//! Assembly of the five blocks into the case-study SoC and run helpers.
//!
//! The netlist reproduces fig. 1 of the paper: five blocks (CU, IC, RF, ALU,
//! DC) and the channels listed in Table 1.  Relay stations are assigned per
//! *link*; the CU-IC link bundles both directions (fetch request and
//! instruction return travel on the same long wire run), which is why it is
//! the most expensive one to pipeline.

use std::error::Error;
use std::fmt;
use std::sync::OnceLock;

use wp_core::{ChannelTrace, ShellConfig, SyncPolicy};
use wp_sim::{GoldenSimulator, LidSimulator, ProcessId, SimError, SystemBuilder};
use wp_spec::NetlistSpec;

use crate::blocks::{ControlUnit, DataMem, Organization};
use crate::msg::Msg;
use crate::programs::Workload;
use crate::spec::soc_registry;

/// Process identifier of the control unit in the assembled system.
pub const CU: ProcessId = 0;
/// Process identifier of the instruction memory.
pub const IC: ProcessId = 1;
/// Process identifier of the register file.
pub const RF: ProcessId = 2;
/// Process identifier of the ALU.
pub const ALU: ProcessId = 3;
/// Process identifier of the data memory.
pub const DC: ProcessId = 4;

/// The named block-to-block links of fig. 1, in the order of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Link {
    /// CU → RF (register commands).
    CuRf,
    /// CU → ALU (operation commands).
    CuAlu,
    /// CU → DC (memory commands).
    CuDc,
    /// CU ↔ IC (fetch requests and instruction return — both directions).
    CuIc,
    /// RF → ALU (operands).
    RfAlu,
    /// RF → DC (store data).
    RfDc,
    /// ALU → CU (flags).
    AluCu,
    /// ALU → RF (write-backs).
    AluRf,
    /// ALU → DC (effective addresses).
    AluDc,
    /// DC → RF (load data).
    DcRf,
}

impl Link {
    /// Every link, in the order used by Table 1 of the paper.
    pub const ALL: [Link; 10] = [
        Link::CuRf,
        Link::CuAlu,
        Link::CuDc,
        Link::CuIc,
        Link::RfAlu,
        Link::RfDc,
        Link::AluCu,
        Link::AluRf,
        Link::AluDc,
        Link::DcRf,
    ];

    /// The label used in the paper's table ("CU-RF", "RF-ALU", …).
    pub fn label(&self) -> &'static str {
        match self {
            Link::CuRf => "CU-RF",
            Link::CuAlu => "CU-AL",
            Link::CuDc => "CU-DC",
            Link::CuIc => "CU-IC",
            Link::RfAlu => "RF-ALU",
            Link::RfDc => "RF-DC",
            Link::AluCu => "ALU-CU",
            Link::AluRf => "ALU-RF",
            Link::AluDc => "ALU-DC",
            Link::DcRf => "DC-RF",
        }
    }

    /// The channel names belonging to this link.
    pub fn channel_names(&self) -> &'static [&'static str] {
        match self {
            Link::CuRf => &["cu_rf"],
            Link::CuAlu => &["cu_alu"],
            Link::CuDc => &["cu_dc"],
            Link::CuIc => &["cu_ic", "ic_cu"],
            Link::RfAlu => &["rf_alu"],
            Link::RfDc => &["rf_dc"],
            Link::AluCu => &["alu_cu"],
            Link::AluRf => &["alu_rf"],
            Link::AluDc => &["alu_dc"],
            Link::DcRf => &["dc_rf"],
        }
    }
}

impl fmt::Display for Link {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A relay-station assignment expressed per link of fig. 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RsConfig {
    counts: [usize; 10],
}

impl RsConfig {
    /// The ideal configuration: no relay station anywhere (row 1 of Table 1).
    pub fn ideal() -> Self {
        Self::default()
    }

    /// `n` relay stations on a single link, none elsewhere (rows 2–11).
    pub fn single(link: Link, n: usize) -> Self {
        let mut cfg = Self::default();
        cfg.set(link, n);
        cfg
    }

    /// `n` relay stations on every link except those in `exclude`
    /// (e.g. "All 1 (no CU-IC)").
    pub fn uniform(n: usize, exclude: &[Link]) -> Self {
        let mut cfg = Self::default();
        for link in Link::ALL {
            if !exclude.contains(&link) {
                cfg.set(link, n);
            }
        }
        cfg
    }

    /// Relay stations currently assigned to a link.
    pub fn get(&self, link: Link) -> usize {
        self.counts[Self::index(link)]
    }

    /// Sets the relay stations of a link.
    pub fn set(&mut self, link: Link, n: usize) -> &mut Self {
        self.counts[Self::index(link)] = n;
        self
    }

    /// Builder-style variant of [`RsConfig::set`].
    pub fn with(mut self, link: Link, n: usize) -> Self {
        self.set(link, n);
        self
    }

    /// Total relay stations over all links (counting the CU-IC bundle as two
    /// physical channels).
    pub fn total(&self) -> usize {
        Link::ALL
            .iter()
            .map(|&l| self.get(l) * l.channel_names().len())
            .sum()
    }

    /// A short description such as `"All 0 (ideal)"` or `"Only RF-DC"`.
    pub fn describe(&self) -> String {
        let nonzero: Vec<Link> = Link::ALL
            .iter()
            .copied()
            .filter(|&l| self.get(l) > 0)
            .collect();
        match nonzero.len() {
            0 => "All 0 (ideal)".to_string(),
            1 => format!("Only {} ({} RS)", nonzero[0], self.get(nonzero[0])),
            _ => {
                let min = nonzero.iter().map(|&l| self.get(l)).min().unwrap_or(0);
                let missing: Vec<&str> = Link::ALL
                    .iter()
                    .filter(|&&l| self.get(l) == 0)
                    .map(|l| l.label())
                    .collect();
                if missing.is_empty() {
                    format!("All {min}")
                } else {
                    format!("All {min} (no {})", missing.join(", "))
                }
            }
        }
    }

    fn index(link: Link) -> usize {
        Link::ALL
            .iter()
            .position(|&l| l == link)
            .expect("every link is in Link::ALL")
    }
}

/// Errors produced by the SoC run helpers.
#[derive(Debug)]
#[non_exhaustive]
pub enum SocError {
    /// The underlying simulator reported an error.
    Sim(SimError),
    /// The data memory block could not be found or downcast after the run.
    MemoryUnavailable,
    /// The final data memory did not match the workload's expected result.
    WrongResult,
    /// The wire-pipelined run's τ-filtered channel realisations diverged
    /// from (or could not be paired with) the golden run's — the
    /// per-scenario equivalence gate failed.  Carries the rendered
    /// [`wp_core::EquivalenceReport`].
    NotEquivalent(String),
}

impl fmt::Display for SocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SocError::Sim(e) => write!(f, "simulation failed: {e}"),
            SocError::MemoryUnavailable => write!(f, "data memory contents unavailable"),
            SocError::WrongResult => write!(f, "final memory does not match the expected result"),
            SocError::NotEquivalent(report) => {
                write!(f, "equivalence gate failed: {report}")
            }
        }
    }
}

impl Error for SocError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SocError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for SocError {
    fn from(e: SimError) -> Self {
        SocError::Sim(e)
    }
}

/// The committed fig. 1 topology (`examples/soc.nl`), parsed once.
///
/// Block, port and channel declaration order in the spec pins the process
/// identifiers to [`CU`], [`IC`], [`RF`], [`ALU`], [`DC`] and the channel
/// identifiers to the order of the original hand-built assembly.
pub fn soc_spec() -> &'static NetlistSpec {
    static SPEC: OnceLock<NetlistSpec> = OnceLock::new();
    SPEC.get_or_init(|| {
        NetlistSpec::parse(include_str!("../../../examples/soc.nl"))
            .expect("the committed SoC spec parses")
    })
}

/// Builds the five-block SoC for a workload, organisation and relay-station
/// configuration, by lowering the committed [`soc_spec`] netlist through
/// [`crate::soc_registry`].
///
/// The returned builder can be handed to either [`GoldenSimulator`] or
/// [`LidSimulator`]; the process identifiers are the constants [`CU`], [`IC`],
/// [`RF`], [`ALU`] and [`DC`].
pub fn build_soc(
    workload: &Workload,
    organization: Organization,
    rs: &RsConfig,
) -> SystemBuilder<Msg> {
    let registry = soc_registry(workload, organization);
    let mut b = wp_spec::lower(soc_spec(), &registry).expect("the committed SoC spec lowers");
    debug_assert_eq!(
        ["cu", "ic", "rf", "alu", "dc"].map(|n| {
            soc_spec()
                .blocks
                .iter()
                .position(|b| b.name == n)
                .expect("spec declares the block")
        }),
        [CU, IC, RF, ALU, DC]
    );
    for link in Link::ALL {
        for name in link.channel_names() {
            let id = b
                .find_channel(name)
                .expect("spec declares every Table 1 channel");
            b.set_relay_stations(id, rs.get(link));
        }
    }
    b
}

/// Outcome of one SoC run (golden or wire-pipelined).
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutcome {
    /// Clock cycles until the control unit halted.
    pub cycles: u64,
    /// Final data-memory contents.
    pub memory: Vec<i64>,
    /// Instructions retired by the control unit.
    pub instructions: u64,
    /// Recorded channel realisations (for equivalence checking).
    pub traces: Vec<ChannelTrace<Msg>>,
}

impl RunOutcome {
    /// Throughput relative to a golden run of `golden_cycles` cycles.
    pub fn throughput_vs(&self, golden_cycles: u64) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            golden_cycles as f64 / self.cycles as f64
        }
    }
}

/// Reads the final data-memory contents out of the [`DC`] process of a
/// finished run (used by sweep post-extractions and the run helpers).
pub fn memory_from_process(process: &dyn wp_core::Process<Msg>) -> Option<Vec<i64>> {
    process
        .as_any()?
        .downcast_ref::<DataMem>()
        .map(|d| d.memory().to_vec())
}

/// Reads the retired-instruction count out of the [`CU`] process of a
/// finished run.
pub fn instructions_from_process(process: &dyn wp_core::Process<Msg>) -> u64 {
    process
        .as_any()
        .and_then(|a| a.downcast_ref::<ControlUnit>())
        .map_or(0, ControlUnit::instructions)
}

/// Architectural state extracted from a finished wire-pipelined SoC run:
/// final data memory and retired-instruction count.
///
/// Designed as a [`wp_sim::Scenario::with_post`] extraction, so relay-station
/// sweeps over the SoC can validate program results per scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SocState {
    /// Final data-memory contents.
    pub memory: Vec<i64>,
    /// Instructions retired by the control unit.
    pub instructions: u64,
}

/// Extracts [`SocState`] from a finished simulator built by [`build_soc`].
///
/// Returns `None` when the data memory cannot be found or downcast (which
/// indicates the simulator was not built by [`build_soc`]).
pub fn soc_state(sim: &LidSimulator<Msg>) -> Option<SocState> {
    Some(SocState {
        memory: memory_from_process(sim.process(DC))?,
        instructions: instructions_from_process(sim.process(CU)),
    })
}

/// Runs the golden (un-pipelined) SoC until the control unit halts.
///
/// # Errors
///
/// Returns [`SocError`] when the simulation fails, exceeds `max_cycles`, or
/// when the final memory cannot be read back.
pub fn run_golden_soc(
    workload: &Workload,
    organization: Organization,
    max_cycles: u64,
) -> Result<RunOutcome, SocError> {
    let builder = build_soc(workload, organization, &RsConfig::ideal());
    let mut sim = GoldenSimulator::new(builder)?;
    let cycles = sim.run_until_halt(CU, max_cycles)?;
    let memory = memory_from_process(sim.process(DC)).ok_or(SocError::MemoryUnavailable)?;
    Ok(RunOutcome {
        cycles,
        memory,
        instructions: instructions_from_process(sim.process(CU)),
        traces: sim.traces(),
    })
}

/// Runs the wire-pipelined SoC (WP1 strict or WP2 oracle shells) until the
/// control unit halts.
///
/// # Errors
///
/// Returns [`SocError`] when the simulation fails, deadlocks, exceeds
/// `max_cycles`, or when the final memory cannot be read back.
pub fn run_wp_soc(
    workload: &Workload,
    organization: Organization,
    rs: &RsConfig,
    policy: SyncPolicy,
    max_cycles: u64,
) -> Result<RunOutcome, SocError> {
    let builder = build_soc(workload, organization, rs);
    let config = ShellConfig::for_policy(policy);
    let mut sim = LidSimulator::new(builder, config)?;
    let cycles = sim.run_until_halt(CU, max_cycles)?;
    // The control unit halts as soon as it decodes `halt`, but stores and
    // write-backs of the previous instructions may still be in flight behind
    // relay stations: let the datapath drain before reading the memory back.
    // The reported cycle count remains the cycle at which the program
    // completed (the same event the golden run measures).
    sim.drain(32, 100_000)?;
    let memory = memory_from_process(sim.process(DC)).ok_or(SocError::MemoryUnavailable)?;
    Ok(RunOutcome {
        cycles,
        memory,
        instructions: instructions_from_process(sim.process(CU)),
        traces: sim.traces(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::programs::{extraction_sort, matrix_multiply};
    use wp_core::check_equivalence;

    const MAX: u64 = 2_000_000;

    #[test]
    fn rs_config_accessors() {
        let cfg = RsConfig::single(Link::RfDc, 2);
        assert_eq!(cfg.get(Link::RfDc), 2);
        assert_eq!(cfg.get(Link::CuIc), 0);
        assert_eq!(cfg.total(), 2);
        assert_eq!(cfg.describe(), "Only RF-DC (2 RS)");

        let all1 = RsConfig::uniform(1, &[Link::CuIc]);
        assert_eq!(all1.get(Link::CuIc), 0);
        assert_eq!(all1.get(Link::AluDc), 1);
        assert_eq!(all1.describe(), "All 1 (no CU-IC)");
        assert_eq!(RsConfig::ideal().describe(), "All 0 (ideal)");
        // CU-IC counts two physical channels.
        assert_eq!(RsConfig::single(Link::CuIc, 1).total(), 2);
    }

    #[test]
    fn golden_multicycle_sort_produces_sorted_memory() {
        let wl = extraction_sort(8, 11).unwrap();
        let outcome = run_golden_soc(&wl, Organization::Multicycle, MAX).unwrap();
        assert!(
            wl.check(&outcome.memory[..8]),
            "memory {:?}",
            &outcome.memory[..8]
        );
        assert!(outcome.cycles > 0);
        assert!(outcome.instructions > 0);
    }

    #[test]
    fn golden_pipelined_sort_produces_sorted_memory() {
        let wl = extraction_sort(8, 11).unwrap();
        let outcome = run_golden_soc(&wl, Organization::Pipelined, MAX).unwrap();
        assert!(wl.check(&outcome.memory[..8]));
        // The pipelined organisation must be faster than the multicycle one.
        let multi = run_golden_soc(&wl, Organization::Multicycle, MAX).unwrap();
        assert!(outcome.cycles < multi.cycles);
    }

    #[test]
    fn golden_matmul_matches_reference() {
        let wl = matrix_multiply(3, 5).unwrap();
        for org in [Organization::Multicycle, Organization::Pipelined] {
            let outcome = run_golden_soc(&wl, org, MAX).unwrap();
            assert!(wl.check(&outcome.memory), "{org:?}");
        }
    }

    #[test]
    fn ideal_wp_runs_match_golden_cycle_count() {
        let wl = extraction_sort(6, 3).unwrap();
        let golden = run_golden_soc(&wl, Organization::Pipelined, MAX).unwrap();
        for policy in [SyncPolicy::Strict, SyncPolicy::Oracle] {
            let wp = run_wp_soc(
                &wl,
                Organization::Pipelined,
                &RsConfig::ideal(),
                policy,
                MAX,
            )
            .unwrap();
            assert!(wl.check(&wp.memory[..6]), "{policy:?}");
            assert_eq!(wp.cycles, golden.cycles, "{policy:?}");
        }
    }

    #[test]
    fn wire_pipelined_runs_are_equivalent_and_correct() {
        let wl = extraction_sort(6, 9).unwrap();
        let golden = run_golden_soc(&wl, Organization::Pipelined, MAX).unwrap();
        let rs = RsConfig::uniform(1, &[Link::CuIc]);
        for policy in [SyncPolicy::Strict, SyncPolicy::Oracle] {
            let wp = run_wp_soc(&wl, Organization::Pipelined, &rs, policy, MAX).unwrap();
            assert!(wl.check(&wp.memory[..6]), "{policy:?}");
            assert!(wp.cycles >= golden.cycles);
            let report = check_equivalence(&golden.traces, &wp.traces);
            assert!(report.is_equivalent(), "{policy:?}: {report}");
        }
    }

    #[test]
    fn oracle_outperforms_strict_on_datapath_links() {
        let wl = extraction_sort(8, 2).unwrap();
        let golden = run_golden_soc(&wl, Organization::Pipelined, MAX).unwrap();
        let rs = RsConfig::single(Link::RfDc, 1);
        let wp1 = run_wp_soc(&wl, Organization::Pipelined, &rs, SyncPolicy::Strict, MAX).unwrap();
        let wp2 = run_wp_soc(&wl, Organization::Pipelined, &rs, SyncPolicy::Oracle, MAX).unwrap();
        assert!(
            wp2.cycles < wp1.cycles,
            "WP2 {} vs WP1 {}",
            wp2.cycles,
            wp1.cycles
        );
        assert!(wp2.throughput_vs(golden.cycles) > wp1.throughput_vs(golden.cycles));
    }

    #[test]
    fn multicycle_wp_runs_complete_with_relay_stations_everywhere() {
        let wl = matrix_multiply(2, 4).unwrap();
        let rs = RsConfig::uniform(1, &[]);
        for policy in [SyncPolicy::Strict, SyncPolicy::Oracle] {
            let wp = run_wp_soc(&wl, Organization::Multicycle, &rs, policy, MAX).unwrap();
            assert!(wl.check(&wp.memory), "{policy:?}");
        }
    }
}
