//! Value-generation strategies: the shim's equivalent of
//! `proptest::strategy`.

use std::ops::Range;

/// The deterministic generator behind every strategy (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform draw in `[0, n)` (`n > 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// A uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`, mirroring
    /// `proptest::strategy::Strategy::prop_map`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategies sampled through a shared reference.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample an empty range");
                let span = self.end.abs_diff(self.start) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A strategy that always yields a clone of one value, mirroring
/// `proptest::strategy::Just`.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical "any value" strategy, mirroring
/// `proptest::arbitrary::Arbitrary`.
pub trait Arbitrary {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, i8, i16, i32, i64, usize, isize);

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// An unconstrained value of `T`, mirroring `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// A size specification for collection strategies.
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        Self {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { min: n, max: n }
    }
}

/// The strategy returned by [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max - self.size.min + 1) as u64;
        let len = self.size.min + rng.below(span) as usize;
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// A vector of values from `element` with a length drawn from `size`,
/// mirroring `proptest::collection::vec`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// The strategy returned by [`option_of`].
#[derive(Debug, Clone)]
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
        // Bias towards Some (3:1) like the real crate's default weighting.
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.inner.sample(rng))
        }
    }
}

/// `Some(value)` from the inner strategy three times out of four, `None`
/// otherwise; mirrors `proptest::option::of`.
pub fn option_of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// Boxes a strategy for storage in a [`Union`] (used by `prop_oneof!`).
pub fn boxed<S: Strategy + 'static>(strategy: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(strategy)
}

/// A uniform choice between boxed strategies, backing the `prop_oneof!`
/// macro.
pub struct Union<T> {
    arms: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Builds the union; `arms` must be non-empty.
    pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }
}

impl<T> std::fmt::Debug for Union<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Union")
            .field("arms", &self.arms.len())
            .finish()
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let arm = rng.below(self.arms.len() as u64) as usize;
        self.arms[arm].sample(rng)
    }
}

/// String strategies from `[class]{min,max}` patterns.
///
/// Only the pattern shape the workspace uses is supported: a single
/// character class (literal characters, `a-z` ranges, `\n`/`\t`/`\\`
/// escapes) followed by a `{min,max}` repetition.
impl Strategy for &str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        let (alphabet, min, max) = parse_class_pattern(self);
        let len = min + rng.below((max - min + 1) as u64) as usize;
        (0..len)
            .map(|_| alphabet[rng.below(alphabet.len() as u64) as usize])
            .collect()
    }
}

fn parse_class_pattern(pattern: &str) -> (Vec<char>, usize, usize) {
    let rest = pattern
        .strip_prefix('[')
        .unwrap_or_else(|| unsupported(pattern));
    let (class, rest) = rest.split_once(']').unwrap_or_else(|| unsupported(pattern));
    let counts = rest
        .strip_prefix('{')
        .and_then(|r| r.strip_suffix('}'))
        .unwrap_or_else(|| unsupported(pattern));
    let (min, max) = counts.split_once(',').unwrap_or((counts, counts));
    let min: usize = min.trim().parse().unwrap_or_else(|_| unsupported(pattern));
    let max: usize = max.trim().parse().unwrap_or_else(|_| unsupported(pattern));
    assert!(min <= max, "inverted repetition in pattern {pattern:?}");

    let mut alphabet = Vec::new();
    let mut chars = class.chars().peekable();
    while let Some(c) = chars.next() {
        let c = if c == '\\' {
            match chars.next() {
                Some('n') => '\n',
                Some('t') => '\t',
                Some('\\') => '\\',
                _ => unsupported(pattern),
            }
        } else {
            c
        };
        if chars.peek() == Some(&'-') {
            chars.next();
            let end = chars.next().unwrap_or_else(|| unsupported(pattern));
            alphabet.extend(c..=end);
        } else {
            alphabet.push(c);
        }
    }
    assert!(!alphabet.is_empty(), "empty character class in {pattern:?}");
    (alphabet, min, max)
}

fn unsupported(pattern: &str) -> ! {
    panic!("the proptest shim only supports `[class]{{min,max}}` string patterns, got {pattern:?}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_and_tuples_sample_in_bounds() {
        let mut rng = TestRng::new(3);
        for _ in 0..500 {
            let v = (0usize..10).sample(&mut rng);
            assert!(v < 10);
            let (a, b) = (1u8..4, -5i32..5).sample(&mut rng);
            assert!((1..4).contains(&a));
            assert!((-5..5).contains(&b));
        }
    }

    #[test]
    fn vec_respects_size_range() {
        let mut rng = TestRng::new(9);
        let strat = vec(0u32..100, 2..6);
        for _ in 0..200 {
            let v = strat.sample(&mut rng);
            assert!((2..6).contains(&v.len()));
        }
    }

    #[test]
    fn map_and_just_compose() {
        let mut rng = TestRng::new(1);
        let strat = Just(21u64).prop_map(|v| v * 2);
        assert_eq!(strat.sample(&mut rng), 42);
    }

    #[test]
    fn union_draws_from_every_arm() {
        let mut rng = TestRng::new(5);
        let union = Union::new(vec![
            Box::new(Just(1u8)) as Box<dyn Strategy<Value = u8>>,
            Box::new(Just(2u8)),
        ]);
        let mut seen = [false; 3];
        for _ in 0..64 {
            seen[union.sample(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2]);
    }

    #[test]
    fn string_pattern_generates_matching_text() {
        let mut rng = TestRng::new(7);
        for _ in 0..100 {
            let s = "[ -~\n]{0,40}".sample(&mut rng);
            assert!(s.len() <= 40);
            assert!(s.chars().all(|c| c == '\n' || (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn option_of_produces_both_variants() {
        let mut rng = TestRng::new(2);
        let strat = option_of(0u32..5);
        let samples: Vec<_> = (0..200).map(|_| strat.sample(&mut rng)).collect();
        assert!(samples.iter().any(Option::is_some));
        assert!(samples.iter().any(Option::is_none));
    }
}
