//! The CI perf-regression gate: fails when any throughput/speedup field of
//! a fresh `BENCH_table1.json` drops more than the tolerance below the
//! committed `BENCH_baseline.json`, or when baseline coverage disappeared.
//!
//! Usage: `bench_compare [--baseline PATH] [--fresh PATH] [--tolerance F]`
//!
//! Defaults: `--baseline BENCH_baseline.json --fresh BENCH_table1.json
//! --tolerance 0.25` (fail on a drop of more than 25%).  CI runs this
//! right after the bench smoke produced the fresh report; to refresh the
//! baseline after an intentional change, copy the fresh report over
//! `BENCH_baseline.json` and commit it (see the README's *Refreshing the
//! perf baseline*).

use wp_bench::{compare_reports, flag_value};
use wp_dist::Json;

fn load(path: &str) -> Result<Json, Box<dyn std::error::Error>> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read report '{path}': {e}"))?;
    Ok(Json::parse(&text).map_err(|e| format!("report '{path}' is not valid JSON: {e}"))?)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name| flag_value(&args, name).unwrap_or_else(|e| e.exit());
    let baseline_path = flag("--baseline").unwrap_or_else(|| "BENCH_baseline.json".to_string());
    let fresh_path = flag("--fresh").unwrap_or_else(|| "BENCH_table1.json".to_string());
    let tolerance: f64 = match flag("--tolerance") {
        None => 0.25,
        Some(v) => match v.parse::<f64>() {
            Ok(t) if (0.0..1.0).contains(&t) => t,
            _ => {
                eprintln!("error: --tolerance expects a fraction in [0, 1), got '{v}'");
                std::process::exit(2);
            }
        },
    };

    let baseline = load(&baseline_path)?;
    let fresh = load(&fresh_path)?;
    let result = compare_reports(&baseline, &fresh, tolerance);
    if result.passed() {
        println!(
            "perf gate passed: {} field(s) of '{fresh_path}' within {:.0}% of '{baseline_path}'",
            result.compared,
            100.0 * tolerance,
        );
        return Ok(());
    }
    eprintln!(
        "perf gate FAILED: {} violation(s) against '{baseline_path}' \
         (tolerance {:.0}%):",
        result.failures.len(),
        100.0 * tolerance,
    );
    for failure in &result.failures {
        eprintln!("  - {failure}");
    }
    eprintln!(
        "if the change is intentional, refresh the baseline: \
         cp {fresh_path} {baseline_path} && git add {baseline_path}"
    );
    std::process::exit(1);
}
