//! Design-space exploration over relay-station assignments: enumerate or
//! search the assignment space of one netlist, score every candidate with
//! the exact analytic solver (`wp_dse`), rank the results into an
//! (area-cost, effective-throughput) Pareto frontier and spot-verify the
//! frontier by lane simulation.
//!
//! The search never simulates: each candidate costs one incremental
//! maximum-cycle-ratio re-solve plus the clock law (see the `wp_dse` crate
//! docs), so millions of relay configurations are scored per run.
//! Simulation is demoted to `--verify`: only the reported frontier points
//! are re-run through the sweep scheduler (lane-packed when eligible), and
//! any analytic-vs-measured divergence beyond 2% fails the run.
//!
//! Usage: `dse [--spec FILE | --seed S [--blocks LO:HI] [--chords LO:HI]
//! [--max-relay N] [--latency-percent P]] [--clock P] [--cap N]
//! [--mode auto|exhaustive|walk] [--walks N] [--steps N] [--units N]
//! [--limit N] [--firings N] [--quick] [--verify] [--json PATH] [--dot]
//! [--workers N] [--batch N] [--lanes on|off|auto] [--oracle on|off|auto]
//! [--shards N | --hosts hosts.conf | --shard i/N] [--emit-ndjson]`
//!
//! The work-unit plan is deterministic and worker-count-independent, the
//! per-cost merge is commutative, and all candidate ties break by a total
//! order — so stdout is byte-identical across `--workers`, `--shards` and
//! `--hosts` (CI diffs them).  Wall-clock figures (configurations/second)
//! go to stderr only.
//!
//! `--quick` shrinks the cap and firing target for the CI smoke and writes
//! `BENCH_dse.json` (configurations scored, frontier size, scoring rate);
//! `--json PATH` writes the report to an explicit path.  `--dot` prints
//! the spec annotated with the best frontier assignment as Graphviz.

use std::time::Instant;

use wp_bench::{
    bench_report_json, dse_unit_from_json, dse_unit_ndjson, flag_value, format_frontier,
    spot_verify_frontier, ArgError, BenchTable, ShardArgs, SweepArgs, TableRow,
};
use wp_dse::{
    merge_outcomes, plan_units, run_unit, run_units, DseConfig, DseOutcome, Evaluator, SearchMode,
    SearchSpace, WorkUnit, DEFAULT_EXHAUSTIVE_LIMIT, DEFAULT_STEPS, DEFAULT_WALKS,
};
use wp_gen::{generate, GenConfig};
use wp_spec::{spec_to_dot, NetlistSpec};

struct Args {
    spec: Option<String>,
    seed: u64,
    gen: GenConfig,
    clock: f64,
    cap: usize,
    mode: SearchMode,
    firings: u64,
    verify: bool,
    dot: bool,
    json: Option<String>,
    units: usize,
    sweep: SweepArgs,
    shard: ShardArgs,
}

/// Parses `LO:HI` into an inclusive range pair.
fn parse_range(flag: &'static str, value: &str) -> Result<(usize, usize), ArgError> {
    let invalid = || ArgError::InvalidValue {
        flag: flag.to_string(),
        value: value.to_string(),
        expected: "a range LO:HI of positive integers",
    };
    let (lo, hi) = value.split_once(':').ok_or_else(invalid)?;
    let lo: usize = lo.parse().map_err(|_| invalid())?;
    let hi: usize = hi.parse().map_err(|_| invalid())?;
    if lo == 0 || hi < lo {
        return Err(invalid());
    }
    Ok((lo, hi))
}

fn parse_args(args: &[String]) -> Result<Args, ArgError> {
    let quick = args.iter().any(|a| a == "--quick");
    let parse_num = |name: &'static str, expected: &'static str| -> Result<Option<u64>, ArgError> {
        match flag_value(args, name)? {
            None => Ok(None),
            Some(v) => v.parse().map(Some).map_err(|_| ArgError::InvalidValue {
                flag: name.to_string(),
                value: v,
                expected,
            }),
        }
    };
    let mut gen = GenConfig::default();
    if let Some(v) = flag_value(args, "--blocks")? {
        gen.blocks = parse_range("--blocks", &v)?;
    }
    if let Some(v) = flag_value(args, "--chords")? {
        gen.chords = parse_range("--chords", &v)?;
    }
    if let Some(v) = parse_num("--max-relay", "a non-negative integer")? {
        gen.max_relay = v as usize;
    }
    if let Some(v) = parse_num("--latency-percent", "a percentage 0-100")? {
        if v > 100 {
            return Err(ArgError::InvalidValue {
                flag: "--latency-percent".to_string(),
                value: v.to_string(),
                expected: "a percentage 0-100",
            });
        }
        gen.latency_percent = v as u8;
    }
    let clock = match flag_value(args, "--clock")? {
        None => 1.0,
        Some(v) => match v.parse::<f64>() {
            Ok(c) if c > 0.0 => c,
            _ => {
                return Err(ArgError::InvalidValue {
                    flag: "--clock".to_string(),
                    value: v,
                    expected: "a positive clock period",
                })
            }
        },
    };
    // --quick shrinks the space (cap 2) and the spot-verify target so the
    // smoke run takes seconds; explicit flags still win.
    let cap = parse_num("--cap", "a non-negative integer")?
        .map_or(if quick { 2 } else { 3 }, |v| v as usize);
    let firings = parse_num("--firings", "a positive firing target")?.unwrap_or(if quick {
        2_000
    } else {
        20_000
    });
    let walks = parse_num("--walks", "a positive walk count")?
        .map_or(DEFAULT_WALKS, |v| v as usize)
        .max(1);
    let steps = parse_num("--steps", "a positive step count")?
        .map_or(DEFAULT_STEPS, |v| v as usize)
        .max(1);
    let exhaustive_limit = parse_num("--limit", "a maximum exhaustive space size")?
        .map_or(DEFAULT_EXHAUSTIVE_LIMIT, u128::from);
    let mode = match flag_value(args, "--mode")? {
        None => SearchMode::Auto {
            exhaustive_limit,
            walks,
            steps,
        },
        Some(v) => match v.as_str() {
            "auto" => SearchMode::Auto {
                exhaustive_limit,
                walks,
                steps,
            },
            "exhaustive" => SearchMode::Exhaustive,
            "walk" => SearchMode::Neighborhood { walks, steps },
            _ => {
                return Err(ArgError::InvalidValue {
                    flag: "--mode".to_string(),
                    value: v,
                    expected: "one of auto, exhaustive, walk",
                })
            }
        },
    };
    Ok(Args {
        spec: flag_value(args, "--spec")?,
        seed: parse_num("--seed", "a seed")?.unwrap_or(0),
        gen,
        clock,
        cap,
        mode,
        firings,
        verify: args.iter().any(|a| a == "--verify"),
        dot: args.iter().any(|a| a == "--dot"),
        json: flag_value(args, "--json")?.or_else(|| quick.then(|| "BENCH_dse.json".to_string())),
        units: parse_num("--units", "a positive unit count")?
            .map_or(wp_dse::DEFAULT_UNITS, |v| v as usize)
            .max(1),
        sweep: SweepArgs::from_args(args)?,
        shard: ShardArgs::from_args(args)?,
    })
}

/// The netlist under exploration and its display label: a committed spec
/// file (`--spec`) or a `wp_gen` topology (`--seed` and the generator
/// flags).  Built identically by the sharding parent and every worker, so
/// the whole fleet agrees on the space and the unit numbering.
fn load_spec(args: &Args) -> Result<(String, NetlistSpec), String> {
    match &args.spec {
        Some(path) => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            let spec = NetlistSpec::parse(&text).map_err(|e| format!("{path}: {e}"))?;
            Ok((path.clone(), spec))
        }
        None => {
            let cfg = GenConfig {
                seed: args.seed,
                ..args.gen
            };
            Ok((format!("seed {}", args.seed), generate(&cfg)))
        }
    }
}

/// Prints the frontier report (deterministic stdout), spot-verifies when
/// asked, and writes the machine-readable report — exactly the same way
/// for the in-process and the sharded-parent paths.
fn publish(
    args: &Args,
    label: &str,
    spec: &NetlistSpec,
    space: &SearchSpace,
    outcome: &DseOutcome,
    wall_seconds: f64,
) -> Result<(), Box<dyn std::error::Error>> {
    let coverage = if outcome.exhaustive {
        "exhaustive"
    } else {
        "neighborhood search"
    };
    let title = format!(
        "Pareto frontier: {label} ({} channels, cap {}, {coverage})",
        space.channels(),
        space.cap(),
    );
    print!("{}", format_frontier(&title, &outcome.frontier));
    println!(
        "scored {} configuration(s), frontier {} point(s)",
        outcome.scored,
        outcome.frontier.len()
    );
    let rate = outcome.scored as f64 / wall_seconds.max(1e-9);
    eprintln!(
        "scored {} configuration(s) in {wall_seconds:.3}s ({rate:.0} configurations/s)",
        outcome.scored
    );

    if args.verify {
        let measured = spot_verify_frontier(
            spec,
            args.clock,
            &outcome.frontier,
            args.firings,
            &args.sweep.runner(),
            args.sweep.lanes,
            args.sweep.oracle,
        )?;
        let worst = outcome
            .frontier
            .iter()
            .zip(&measured)
            .map(|(p, th)| (th - p.cycle_throughput).abs() / p.cycle_throughput)
            .fold(0.0f64, f64::max);
        println!(
            "spot-verified {} frontier point(s) by lane simulation within 2% of the analytic \
             scores",
            measured.len()
        );
        eprintln!("worst analytic-vs-measured error: {:.3}%", 100.0 * worst);
    }

    if args.dot {
        // Annotate the spec with the best (highest-effective) frontier
        // assignment — the one a designer would take forward.
        if let Some(best) = outcome.frontier.last() {
            let mut annotated = spec.clone();
            annotated.insert_relays(args.clock);
            annotated.apply_relay_assignment(&best.assignment);
            annotated.budget = None;
            let name: String = label
                .chars()
                .map(|c| if c.is_alphanumeric() { c } else { '_' })
                .collect();
            print!("{}", spec_to_dot(&annotated, &name));
        }
    }

    if let Some(path) = &args.json {
        let best = outcome.frontier.last();
        let row = TableRow {
            label: label.to_string(),
            golden_cycles: outcome.scored,
            wp1_cycles: outcome.frontier.len() as u64,
            wp2_cycles: rate as u64,
            th_wp1: best.map_or(0.0, |p| p.effective),
            th_wp2: best.map_or(0.0, |p| p.cycle_throughput),
            th_wp1_predicted: 0.0,
            improvement_percent: 0.0,
            proven_n_wp1: None,
            proven_n_wp2: None,
        };
        let runner = args.sweep.runner();
        let report = bench_report_json(
            "dse",
            runner.workers(),
            runner.batch(),
            wall_seconds,
            &[BenchTable {
                title: "Design-space exploration (analytic Pareto search)".to_string(),
                rows: vec![row],
            }],
        );
        std::fs::write(path, report)?;
        eprintln!("wrote machine-readable report to {path}");
    }
    Ok(())
}

/// The in-process path: plan, search across worker threads, publish.
fn run_local(
    args: &Args,
    label: &str,
    spec: &NetlistSpec,
    space: &SearchSpace,
    cfg: &DseConfig,
    units: &[WorkUnit],
) -> Result<(), Box<dyn std::error::Error>> {
    let workers = args.sweep.runner().workers();
    eprintln!(
        "searching {} configuration space of {label} across {workers} worker thread(s)",
        space.size()
    );
    let start = Instant::now();
    let outcomes = run_units(space, cfg, units, workers);
    let outcome = merge_outcomes(
        outcomes,
        matches!(units.first(), Some(WorkUnit::Range { .. })),
    );
    publish(
        args,
        label,
        spec,
        space,
        &outcome,
        start.elapsed().as_secs_f64(),
    )
}

/// The worker path (`--shard i/N` / `--emit-ndjson`): run only this
/// shard's contiguous unit range and emit one NDJSON record per unit.
fn run_worker(
    args: &Args,
    space: &SearchSpace,
    cfg: &DseConfig,
    units: &[WorkUnit],
) -> Result<(), Box<dyn std::error::Error>> {
    let range = args.shard.worker_range(units.len());
    let mut eval = Evaluator::new(space);
    for index in range {
        let outcome = run_unit(space, cfg, &units[index], &mut eval);
        println!("{}", dse_unit_ndjson(index, &outcome));
    }
    Ok(())
}

/// The parent path (`--shards N` / `--hosts`): fork one worker per
/// contiguous unit range, re-score every returned survivor to cross-check
/// bit identity, merge in submission order and publish exactly what the
/// in-process path publishes.
fn run_parent(
    args: &Args,
    label: &str,
    spec: &NetlistSpec,
    space: &SearchSpace,
    units: &[WorkUnit],
) -> Result<(), Box<dyn std::error::Error>> {
    let start = Instant::now();
    let records = args
        .shard
        .run_sharded_rows(units.len(), "work unit", None)?;
    let mut eval = Evaluator::new(space);
    let mut outcomes = Vec::with_capacity(records.len());
    for (index, record) in records.iter().enumerate() {
        let outcome = dse_unit_from_json(record, space, &mut eval)
            .map_err(|e| format!("worker record for unit {index}: {e}"))?;
        outcomes.push(outcome);
    }
    let outcome = merge_outcomes(
        outcomes,
        matches!(units.first(), Some(WorkUnit::Range { .. })),
    );
    publish(
        args,
        label,
        spec,
        space,
        &outcome,
        start.elapsed().as_secs_f64(),
    )
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = parse_args(&argv).unwrap_or_else(|e| e.exit());
    let (label, spec) = load_spec(&args)?;
    let space = SearchSpace::from_spec(&spec, args.cap, args.clock);
    let cfg = DseConfig {
        mode: args.mode,
        seed: args.seed,
        units: args.units,
    };
    let units = plan_units(&space, &cfg);
    if args.shard.is_parent() {
        run_parent(&args, &label, &spec, &space, &units)
    } else if args.shard.emit_ndjson {
        run_worker(&args, &space, &cfg, &units)
    } else {
        run_local(&args, &label, &spec, &space, &cfg, &units)
    }
}
