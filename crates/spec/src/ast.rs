//! The netlist description data model: blocks, ports, channels and the
//! relay budget, plus the canonical printer and the registry-free
//! [`Netlist`] export.

use std::error::Error;
use std::fmt;
use std::fmt::Write as _;

use wp_netlist::{relay_stations_for_delay, Netlist};

/// Errors raised while parsing or lowering a netlist spec.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SpecError {
    /// The spec text violates the format; `line` is 1-based (0 for
    /// whole-spec violations detected after the last line, following the
    /// hostfile convention of `wp_dist`).
    Parse {
        /// 1-based offending line (0 for end-of-spec checks).
        line: usize,
        /// Human-readable explanation.
        message: String,
    },
    /// A well-formed spec could not be lowered to a system: unknown block
    /// kind, port-count mismatch with the constructed process, budget
    /// overrun, or an inconsistency reported by the system builder.
    Build {
        /// Human-readable explanation.
        message: String,
    },
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Parse { line, message } => write!(f, "spec line {line}: {message}"),
            SpecError::Build { message } => write!(f, "spec lowering failed: {message}"),
        }
    }
}

impl Error for SpecError {}

/// One endpoint of a channel: a block and one of its named ports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Endpoint {
    /// Referenced block name.
    pub block: String,
    /// Referenced port name (an output for `from=`, an input for `to=`).
    pub port: String,
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.block, self.port)
    }
}

/// One `block` directive: a named block of some registry-interpreted kind,
/// its open attribute list and its declared ports (declaration order is
/// port index).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockSpec {
    /// Unique block name.
    pub name: String,
    /// Block kind, resolved by a [`crate::BlockRegistry`] at lowering.
    pub kind: String,
    /// Remaining `key=value` attributes, in declaration order; their
    /// meaning is owned by the registry constructor for `kind`.
    pub attrs: Vec<(String, String)>,
    /// Declared input ports, in order (index = position).
    pub inputs: Vec<String>,
    /// Declared output ports, in order (index = position).
    pub outputs: Vec<String>,
}

impl BlockSpec {
    /// The value of attribute `key`, when present.
    pub fn attr(&self, key: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// One `channel` directive: a named point-to-point connection with its
/// relay-station count and optional wire latency.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelDecl {
    /// Unique channel name.
    pub name: String,
    /// Producer endpoint (an output port).
    pub from: Endpoint,
    /// Consumer endpoint (an input port).
    pub to: Endpoint,
    /// Relay stations on the channel (default 0; `relay=` or a `relay`
    /// directive).
    pub relay_stations: usize,
    /// Wire latency in clock periods (`latency=` or a `latency`
    /// directive), consumed by [`NetlistSpec::insert_relays`].
    pub latency: Option<u64>,
}

/// A parsed netlist description: the data every executable view is built
/// from (scalar/golden/lane simulators via [`crate::lower`], the
/// throughput graph via [`NetlistSpec::to_netlist`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetlistSpec {
    /// Declared blocks, in order (index = process identifier after
    /// lowering).
    pub blocks: Vec<BlockSpec>,
    /// Declared channels, in order (index = channel identifier after
    /// lowering).
    pub channels: Vec<ChannelDecl>,
    /// Total relay-station budget (`budget` directive), when declared.
    pub budget: Option<usize>,
}

impl NetlistSpec {
    /// Finds a block by name.
    pub fn find_block(&self, name: &str) -> Option<&BlockSpec> {
        self.blocks.iter().find(|b| b.name == name)
    }

    /// Finds a channel by name.
    pub fn find_channel(&self, name: &str) -> Option<&ChannelDecl> {
        self.channels.iter().find(|c| c.name == name)
    }

    /// Total relay stations over all channels.
    pub fn total_relay_stations(&self) -> usize {
        self.channels.iter().map(|c| c.relay_stations).sum()
    }

    /// The per-channel relay-station assignment, indexed like the channel
    /// declarations — and therefore exactly like the edges of
    /// [`NetlistSpec::to_netlist`], whose insertion order matches the
    /// declaration order.  This is the vector a design-space search mutates
    /// (see `wp_dse`).
    pub fn relay_assignment(&self) -> Vec<usize> {
        self.channels.iter().map(|c| c.relay_stations).collect()
    }

    /// Applies a relay-station assignment produced by
    /// [`NetlistSpec::relay_assignment`] (or by a search over that space),
    /// one count per declared channel.
    ///
    /// # Panics
    ///
    /// Panics if `assignment.len()` differs from the channel count.
    pub fn apply_relay_assignment(&mut self, assignment: &[usize]) {
        assert_eq!(
            assignment.len(),
            self.channels.len(),
            "assignment length must equal the channel count"
        );
        for (channel, &rs) in self.channels.iter_mut().zip(assignment) {
            channel.relay_stations = rs;
        }
    }

    /// The per-channel wire latencies implied by the declarations at the
    /// given reference clock period: the declared `latency=` when present,
    /// otherwise the longest wire delay consistent with the declared relay
    /// count under the paper's budgeting rule
    /// (`relay = ⌈latency/period⌉ − 1`, so `latency =
    /// (relay + 1) · reference_period`).
    ///
    /// A design-space search reads these as the *physical* wire delays of
    /// the netlist: an assignment giving channel `i` `r` stations splits
    /// its wire into `r + 1` segments, each of which must fit in one clock
    /// period, so the assignment's fastest feasible clock is
    /// `max(reference_period, maxᵢ latencyᵢ/(rᵢ+1))`.
    ///
    /// # Panics
    ///
    /// Panics when `reference_period` is not positive.
    pub fn wire_latencies(&self, reference_period: f64) -> Vec<f64> {
        assert!(
            reference_period > 0.0,
            "reference clock period must be positive"
        );
        self.channels
            .iter()
            .map(|c| match c.latency {
                Some(latency) => latency as f64,
                None => (c.relay_stations + 1) as f64 * reference_period,
            })
            .collect()
    }

    /// Converts every declared channel latency into a relay-station count
    /// (`⌈latency / clock_period⌉ − 1`, the paper's wire-pipelining rule)
    /// and clears the latency, keeping whatever explicit count is larger.
    ///
    /// # Panics
    ///
    /// Panics when `clock_period` is not positive (propagated from
    /// [`relay_stations_for_delay`]).
    pub fn insert_relays(&mut self, clock_period: f64) {
        for channel in &mut self.channels {
            if let Some(latency) = channel.latency.take() {
                let rs = relay_stations_for_delay(latency as f64, clock_period);
                channel.relay_stations = channel.relay_stations.max(rs);
            }
        }
    }

    /// Validates the whole-spec invariants that individual directive lines
    /// cannot: at least one block, every channel endpoint resolving to a
    /// declared port of the right direction, every declared port used by
    /// exactly one channel, and the relay total within the budget.
    ///
    /// Parsing runs this before returning; it is public because specs can
    /// also be built programmatically (the `wp_gen` generator) or mutated
    /// after parsing.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for the first violation.
    pub fn check(&self) -> Result<(), String> {
        if self.blocks.is_empty() {
            return Err("the spec declares no blocks".to_string());
        }
        // Usage counters, indexed like the declarations.
        let mut in_counts: Vec<Vec<usize>> = self
            .blocks
            .iter()
            .map(|b| vec![0; b.inputs.len()])
            .collect();
        let mut out_counts: Vec<Vec<usize>> = self
            .blocks
            .iter()
            .map(|b| vec![0; b.outputs.len()])
            .collect();
        for channel in &self.channels {
            let (src, src_port) = self
                .resolve(&channel.from, Direction::Out)
                .map_err(|e| format!("channel '{}': {e}", channel.name))?;
            let (dst, dst_port) = self
                .resolve(&channel.to, Direction::In)
                .map_err(|e| format!("channel '{}': {e}", channel.name))?;
            out_counts[src][src_port] += 1;
            in_counts[dst][dst_port] += 1;
        }
        for (b, block) in self.blocks.iter().enumerate() {
            for (p, count) in in_counts[b].iter().enumerate() {
                if *count != 1 {
                    return Err(format!(
                        "input port '{}.{}' is fed by {count} channels (expected 1)",
                        block.name, block.inputs[p]
                    ));
                }
            }
            for (p, count) in out_counts[b].iter().enumerate() {
                if *count != 1 {
                    return Err(format!(
                        "output port '{}.{}' drives {count} channels (expected 1)",
                        block.name, block.outputs[p]
                    ));
                }
            }
        }
        if let Some(budget) = self.budget {
            let total = self.total_relay_stations();
            if total > budget {
                return Err(format!(
                    "total relay stations {total} exceed budget {budget}"
                ));
            }
        }
        Ok(())
    }

    /// Resolves an endpoint to `(block index, port index)` in the given
    /// direction.
    pub(crate) fn resolve(
        &self,
        endpoint: &Endpoint,
        direction: Direction,
    ) -> Result<(usize, usize), String> {
        let block = self
            .blocks
            .iter()
            .position(|b| b.name == endpoint.block)
            .ok_or_else(|| format!("endpoint '{endpoint}' references unknown block"))?;
        let ports = match direction {
            Direction::In => &self.blocks[block].inputs,
            Direction::Out => &self.blocks[block].outputs,
        };
        let port = ports
            .iter()
            .position(|p| *p == endpoint.port)
            .ok_or_else(|| {
                format!(
                    "block '{}' has no {} port '{}'",
                    endpoint.block,
                    direction.label(),
                    endpoint.port
                )
            })?;
        Ok((block, port))
    }

    /// Builds the [`Netlist`] view of the spec without constructing any
    /// process: one node per block (named after it), one edge per channel,
    /// annotated with the relay-station counts.  Node/edge insertion order
    /// matches the declaration order, so `NodeId::index()` is the block
    /// index.
    pub fn to_netlist(&self) -> Netlist {
        let mut net = Netlist::new();
        let nodes: Vec<_> = self
            .blocks
            .iter()
            .map(|b| net.add_node(b.name.clone()))
            .collect();
        for channel in &self.channels {
            let src = self
                .blocks
                .iter()
                .position(|b| b.name == channel.from.block)
                .expect("checked spec: every endpoint block is declared");
            let dst = self
                .blocks
                .iter()
                .position(|b| b.name == channel.to.block)
                .expect("checked spec: every endpoint block is declared");
            let e = net.add_edge(channel.name.clone(), nodes[src], nodes[dst]);
            net.set_relay_stations(e, channel.relay_stations);
        }
        net
    }

    /// Prints the spec in canonical form: each block followed by its ports,
    /// then the channels (relay/latency inlined as `relay=`/`latency=`),
    /// then the budget.  Parsing the printed text yields an identical spec
    /// (`parse(print(s)) == s`), which the round-trip property tests pin.
    pub fn print(&self) -> String {
        let mut out = String::new();
        for block in &self.blocks {
            let _ = write!(out, "block {} kind={}", block.name, fmt_value(&block.kind));
            for (key, value) in &block.attrs {
                let _ = write!(out, " {key}={}", fmt_value(value));
            }
            let _ = writeln!(out);
            for port in &block.inputs {
                let _ = writeln!(out, "port {} in {port}", block.name);
            }
            for port in &block.outputs {
                let _ = writeln!(out, "port {} out {port}", block.name);
            }
        }
        if !self.channels.is_empty() {
            let _ = writeln!(out);
        }
        for channel in &self.channels {
            let _ = write!(
                out,
                "channel {} from={} to={}",
                channel.name, channel.from, channel.to
            );
            if channel.relay_stations > 0 {
                let _ = write!(out, " relay={}", channel.relay_stations);
            }
            if let Some(latency) = channel.latency {
                let _ = write!(out, " latency={latency}");
            }
            let _ = writeln!(out);
        }
        if let Some(budget) = self.budget {
            let _ = writeln!(out, "\nbudget {budget}");
        }
        out
    }
}

impl fmt::Display for NetlistSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.print())
    }
}

/// Port direction of an endpoint resolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Direction {
    /// Input port (`to=` endpoints).
    In,
    /// Output port (`from=` endpoints).
    Out,
}

impl Direction {
    pub(crate) fn label(self) -> &'static str {
        match self {
            Direction::In => "input",
            Direction::Out => "output",
        }
    }
}

/// Quotes a value for the canonical printer when the plain form would not
/// re-tokenize to it (whitespace or empty).
fn fmt_value(value: &str) -> String {
    if value.is_empty() || value.chars().any(char::is_whitespace) {
        format!("\"{value}\"")
    } else {
        value.to_string()
    }
}
