//! Measures the steady-state period oracle against plain simulation and
//! writes the machine-readable `BENCH_oracle.json` report that the CI perf
//! gate (`bench_compare`) checks against the committed baseline.
//!
//! For each full Table-1 workload (Extraction Sort and Matrix Multiply)
//! the same WP1 run — the control unit's halt goal re-expressed as its
//! golden firing count — is executed twice, plainly
//! (`LidSimulator::run_until_firings`) and with extrapolation
//! (`LidSimulator::run_until_firings_extrapolated`), after asserting the
//! two report the identical goal cycle.  The row's `th_wp1` field carries
//! the cycle saving (total cycles over simulated cycles — a deterministic,
//! machine-independent ratio) and `th_wp2` the wall-clock speedup; both
//! are gated by `bench_compare`.  The raw timings land in the cycle
//! columns for context only.
//!
//! Usage: `oracle_speed [--iters N] [--json PATH]`
//!
//! Defaults: `--iters 3` (each side is timed `N` times and the fastest
//! run wins, damping scheduler noise) and `--json BENCH_oracle.json`.

use std::time::Instant;

use wp_bench::{
    bench_report_json, flag_value, json_f64, matmul_workload, sort_workload, BenchTable, TableRow,
    MAX_CYCLES,
};
use wp_core::ShellConfig;
use wp_proc::{build_soc, run_golden_soc, Link, Organization, RsConfig, Workload, CU};
use wp_sim::{LidSimulator, OracleRun};

/// Times `f` over `iters` runs and returns the fastest wall-clock seconds.
fn time_best<T>(iters: u32, mut f: impl FnMut() -> T) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let start = Instant::now();
        let result = f();
        best = best.min(start.elapsed().as_secs_f64());
        drop(result);
    }
    best
}

/// One WP1 run simulated plainly to the firing goal.
fn run_plain(workload: &Workload, rs: &RsConfig, target: u64) -> u64 {
    let builder = build_soc(workload, Organization::Pipelined, rs);
    let mut sim = LidSimulator::new(builder, ShellConfig::strict()).expect("SoC assembles");
    sim.set_trace_enabled(false);
    sim.run_until_firings(CU, target, MAX_CYCLES)
        .expect("SoC run completes")
}

/// The same WP1 run with the period oracle allowed to extrapolate.
fn run_oracle(workload: &Workload, rs: &RsConfig, target: u64) -> OracleRun {
    let builder = build_soc(workload, Organization::Pipelined, rs);
    let mut sim = LidSimulator::new(builder, ShellConfig::strict()).expect("SoC assembles");
    sim.set_trace_enabled(false);
    sim.run_until_firings_extrapolated(CU, target, MAX_CYCLES)
        .expect("SoC run completes")
}

/// Measures one workload: verifies oracle-vs-plain equality, times both
/// sides and returns the report row.
fn measure(label: &str, workload: &Workload, rs: &RsConfig, iters: u32) -> TableRow {
    let target = run_golden_soc(workload, Organization::Pipelined, MAX_CYCLES)
        .expect("golden run completes")
        .cycles;
    let plain_cycles = run_plain(workload, rs, target);
    let oracle = run_oracle(workload, rs, target);
    assert_eq!(
        oracle.report.cycles, plain_cycles,
        "{label}: the oracle must report the plainly-simulated goal cycle"
    );
    assert!(
        oracle.extrapolated,
        "{label}: the WP1 steady state must be detected and extrapolated"
    );
    let cycle_saving = oracle.report.cycles as f64 / oracle.simulated_cycles.max(1) as f64;

    let plain_seconds = time_best(iters, || run_plain(workload, rs, target));
    let oracle_seconds = time_best(iters, || run_oracle(workload, rs, target));
    let speedup = plain_seconds / oracle_seconds;
    println!(
        "{label}: simulated {} of {} cycles ({cycle_saving:.1}x), plain {:.2} ms, \
         oracle {:.2} ms, speedup {speedup:.2}x",
        oracle.simulated_cycles,
        oracle.report.cycles,
        1e3 * plain_seconds,
        1e3 * oracle_seconds,
    );

    // TableRow is reused so `bench_compare` gates this report unchanged:
    // th_wp1 carries the deterministic cycle-saving ratio, th_wp2 the
    // wall-clock speedup, and the cycle columns the raw timings in
    // microseconds (context only, not gated — zero/negative baselines are
    // skipped by design).
    TableRow {
        label: label.to_string(),
        golden_cycles: oracle.report.cycles,
        wp1_cycles: (1e6 * plain_seconds) as u64,
        wp2_cycles: (1e6 * oracle_seconds) as u64,
        th_wp1: cycle_saving,
        th_wp2: speedup,
        th_wp1_predicted: 0.0,
        improvement_percent: 0.0,
        proven_n_wp1: None,
        proven_n_wp2: None,
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name| flag_value(&args, name).unwrap_or_else(|e| e.exit());
    let iters: u32 = match flag("--iters") {
        None => 3,
        Some(v) => match v.parse() {
            Ok(n) if n >= 1 => n,
            _ => {
                eprintln!("error: --iters expects a positive integer, got '{v}'");
                std::process::exit(2);
            }
        },
    };
    let json = flag("--json").unwrap_or_else(|| "BENCH_oracle.json".to_string());

    let start = Instant::now();
    let rows = vec![
        measure(
            "Extraction Sort (16) WP1",
            &sort_workload(),
            &RsConfig::uniform(1, &[Link::CuIc]),
            iters,
        ),
        measure(
            "Matrix Multiply (5x5) WP1",
            &matmul_workload(),
            &RsConfig::uniform(2, &[Link::CuIc]),
            iters,
        ),
    ];
    let worst = rows.iter().map(|r| r.th_wp2).fold(f64::INFINITY, f64::min);
    println!("worst oracle speedup: {}x", json_f64(worst));

    let tables = vec![BenchTable {
        title: "Period oracle vs plain simulation (WP1, full workloads)".to_string(),
        rows,
    }];
    let report = bench_report_json("oracle", 1, 0, start.elapsed().as_secs_f64(), &tables);
    std::fs::write(&json, report)?;
    eprintln!("wrote machine-readable report to {json}");
    Ok(())
}
