//! Property tests tying the two halves of the analytical throughput oracle
//! together, end to end across crates:
//!
//! * the **exact max-cycle-ratio solver** (`wp_netlist::ThroughputModel::
//!   Exact`) must predict the steady-state throughput the **lane kernel
//!   actually measures** on seeded random strongly-connected netlists, and
//! * the **period-detection extrapolation** of the lane kernel must be
//!   bit-identical to plain scalar simulation for every lane count from 1
//!   to `MAX_LANES`.

use wp_bench::build_ring;
use wp_core::{PortSet, Process, ShellConfig};
use wp_netlist::ThroughputModel;
use wp_sim::{LaneLidSimulator, LaneScenario, LidSimulator, SystemBuilder, MAX_LANES};

/// Deterministic splitmix64 — the same generator the stall schedules use,
/// re-implemented here so the test owns its sequence.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A strict-firing stage with arbitrary port counts: needs every input,
/// sums them and forwards the sum on every output.  Only the control plane
/// matters to these tests; the values just have to flow.
#[derive(Debug)]
struct FanStage {
    name: String,
    ins: usize,
    outs: usize,
    value: u64,
}

impl Process<u64> for FanStage {
    fn name(&self) -> &str {
        &self.name
    }
    fn num_inputs(&self) -> usize {
        self.ins
    }
    fn num_outputs(&self) -> usize {
        self.outs
    }
    fn output(&self, _port: usize) -> u64 {
        self.value
    }
    fn required_inputs(&self) -> PortSet {
        PortSet::all(self.ins)
    }
    fn fire(&mut self, inputs: &[Option<u64>]) {
        self.value = inputs
            .iter()
            .flatten()
            .fold(1u64, |acc, &v| acc.wrapping_add(v));
    }
    fn reset(&mut self) {
        self.value = 0;
    }
}

/// One seeded random strongly-connected system: a backbone ring of `n`
/// stages (which guarantees strong connectivity) plus a few random chord
/// edges, every edge carrying a random relay-station budget.  Returns the
/// edge list as `(from, to, relay_stations)` so the caller can rebuild the
/// same topology with different budgets.
fn random_edges(seed: u64) -> Vec<(usize, usize, usize)> {
    let mut state = seed;
    let n = 3 + (splitmix64(&mut state) % 5) as usize;
    let chords = 1 + (splitmix64(&mut state) % 3) as usize;
    let mut edges: Vec<(usize, usize, usize)> = (0..n)
        .map(|i| {
            let rs = (splitmix64(&mut state) % 3) as usize;
            (i, (i + 1) % n, rs)
        })
        .collect();
    for _ in 0..chords {
        let from = (splitmix64(&mut state) % n as u64) as usize;
        let mut to = (splitmix64(&mut state) % n as u64) as usize;
        if to == from {
            to = (to + 1) % n;
        }
        let rs = (splitmix64(&mut state) % 4) as usize;
        edges.push((from, to, rs));
    }
    edges
}

/// Builds the system for an edge list: one [`FanStage`] per node with port
/// counts matching its degree, one channel per edge.
fn build_graph(edges: &[(usize, usize, usize)]) -> SystemBuilder<u64> {
    let n = edges
        .iter()
        .map(|&(from, to, _)| from.max(to) + 1)
        .max()
        .expect("at least one edge");
    let outs: Vec<usize> = (0..n)
        .map(|p| edges.iter().filter(|&&(from, _, _)| from == p).count())
        .collect();
    let ins: Vec<usize> = (0..n)
        .map(|p| edges.iter().filter(|&&(_, to, _)| to == p).count())
        .collect();
    let mut b = SystemBuilder::new();
    let ids: Vec<_> = (0..n)
        .map(|p| {
            b.add_process(Box::new(FanStage {
                name: format!("p{p}"),
                ins: ins[p],
                outs: outs[p],
                value: 0,
            }))
        })
        .collect();
    let mut next_out = vec![0usize; n];
    let mut next_in = vec![0usize; n];
    for (e, &(from, to, rs)) in edges.iter().enumerate() {
        b.connect(
            format!("e{e}"),
            ids[from],
            next_out[from],
            ids[to],
            next_in[to],
            rs,
        );
        next_out[from] += 1;
        next_in[to] += 1;
    }
    b
}

/// The exact max-cycle-ratio solver must predict what the lane kernel
/// measures: for seeded random strongly-connected netlists, every lane
/// runs the same topology under a different relay budget on the backbone
/// edge, and the measured steady-state throughput of each lane must match
/// `ThroughputModel::Exact` on that lane's netlist.
#[test]
fn exact_mcr_matches_the_lane_kernel_steady_state_on_random_netlists() {
    const TARGET: u64 = 20_000;
    const LANES: usize = 8;
    for seed in [1u64, 7, 23, 2005, 40_289] {
        let edges = random_edges(seed);
        let relay_base: Vec<usize> = edges.iter().map(|&(_, _, rs)| rs).collect();
        let lanes: Vec<LaneScenario> = (0..LANES)
            .map(|lane| {
                let mut relay_stations = relay_base.clone();
                relay_stations[0] += lane;
                LaneScenario {
                    relay_stations,
                    stall: None,
                }
            })
            .collect();
        let mut sim = LaneLidSimulator::new(build_graph(&edges), &lanes, ShellConfig::strict())
            .expect("random graph assembles");
        let outcomes = sim.run_until_firings_extrapolated(0, TARGET, 100 * TARGET);
        for (lane, outcome) in outcomes.into_iter().enumerate() {
            let run = outcome.expect("strongly-connected graphs never deadlock");
            let mut lane_edges = edges.clone();
            lane_edges[0].2 += lane;
            let net = build_graph(&lane_edges).to_netlist();
            let predicted = ThroughputModel::Exact.predict(&net);
            let measured = TARGET as f64 / run.report.cycles as f64;
            assert!(
                (measured - predicted).abs() / predicted < 0.02,
                "seed {seed} lane {lane}: measured {measured} vs exact MCR {predicted}"
            );
        }
    }
}

/// Period-detection extrapolation must be bit-identical to plain
/// simulation for every lane count: each lane of a `k`-lane batch must
/// report exactly what a scalar simulator reports for the same ring and
/// relay budget, for `k` spanning 1 to `MAX_LANES`.
#[test]
fn lane_extrapolation_is_bit_identical_to_scalar_runs_for_all_lane_counts() {
    const TARGET: u64 = 20_000;
    const STAGES: usize = 4;
    for k in [1usize, 2, 5, 63, MAX_LANES] {
        let budget = |lane: usize| lane % 7;
        let lanes: Vec<LaneScenario> = (0..k)
            .map(|lane| {
                let mut relay_stations = vec![0; STAGES];
                relay_stations[0] = budget(lane);
                LaneScenario {
                    relay_stations,
                    stall: None,
                }
            })
            .collect();
        let mut sim =
            LaneLidSimulator::new(build_ring(STAGES, 0, None), &lanes, ShellConfig::strict())
                .expect("ring assembles");
        let outcomes = sim.run_until_firings_extrapolated(0, TARGET, 100 * TARGET);
        assert_eq!(outcomes.len(), k);
        let mut extrapolated = 0;
        for (lane, outcome) in outcomes.into_iter().enumerate() {
            let run = outcome.expect("rings never deadlock");
            let mut scalar = LidSimulator::new(
                build_ring(STAGES, budget(lane), None),
                ShellConfig::strict(),
            )
            .expect("ring assembles");
            scalar.set_trace_enabled(false);
            let cycles = scalar
                .run_until_firings(0, TARGET, 100 * TARGET)
                .expect("scalar ring completes");
            assert_eq!(run.report.cycles, cycles, "k={k} lane {lane}");
            assert_eq!(run.report, scalar.report(), "k={k} lane {lane}");
            if run.extrapolated {
                extrapolated += 1;
                assert!(run.simulated_cycles < run.report.cycles);
            }
        }
        assert!(extrapolated > 0, "k={k}: no lane extrapolated");
    }
}
