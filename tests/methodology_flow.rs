//! Integration test of the end-to-end methodology: floorplan → wire delays →
//! relay-station budget → throughput prediction → simulation, plus the area
//! overhead bound.  Spans `wp-floorplan`, `wp-netlist`, `wp-proc`, `wp-sim`
//! and `wp-area`.

use wp_area::{case_study_overhead_sweep, CellLibrary};
use wp_core::SyncPolicy;
use wp_floorplan::{anneal, AnnealConfig, Block, Floorplan, WireModel};
use wp_proc::{
    build_soc, extraction_sort, run_golden_soc, run_wp_soc, Link, Organization, RsConfig,
};

const MAX_CYCLES: u64 = 5_000_000;

fn case_study_floorplan() -> Floorplan {
    let mut fp = Floorplan::new(14.0, 14.0);
    for (name, w, h) in [
        ("CU", 2.0, 2.0),
        ("IC", 5.0, 5.0),
        ("RF", 2.0, 3.0),
        ("ALU", 3.0, 3.0),
        ("DC", 5.0, 5.0),
    ] {
        fp.add_block(Block::new(name, w, h));
    }
    fp
}

#[test]
fn floorplan_driven_relay_budget_runs_and_respects_the_prediction() {
    let workload = extraction_sort(8, 1).unwrap();
    let organization = Organization::Pipelined;
    let fp = case_study_floorplan();
    let model = WireModel::nm130(1.0);
    let net = build_soc(&workload, organization, &RsConfig::ideal()).to_netlist();

    let config = AnnealConfig {
        iterations: 300,
        ..AnnealConfig::default()
    };
    let result = anneal(&fp, &net, &model, &config);
    assert!(!fp.has_overlap(&result.placement));

    // Translate the per-channel budget into a per-link configuration.
    let budget = fp.relay_station_budget(&net, &result.placement, &model);
    let mut rs = RsConfig::ideal();
    for link in Link::ALL {
        let needed = link
            .channel_names()
            .iter()
            .filter_map(|name| net.find_edge(name))
            .map(|e| budget[e.index()])
            .max()
            .unwrap_or(0);
        rs.set(link, needed);
    }

    let golden = run_golden_soc(&workload, organization, MAX_CYCLES).unwrap();
    let wp1 = run_wp_soc(&workload, organization, &rs, SyncPolicy::Strict, MAX_CYCLES).unwrap();
    let wp2 = run_wp_soc(&workload, organization, &rs, SyncPolicy::Oracle, MAX_CYCLES).unwrap();
    assert!(workload.check(&wp1.memory[..workload.expected_memory.len()]));
    assert!(workload.check(&wp2.memory[..workload.expected_memory.len()]));

    let th1 = wp1.throughput_vs(golden.cycles);
    let th2 = wp2.throughput_vs(golden.cycles);
    // The annealer's prediction uses the per-channel budget; the per-link
    // configuration rounds up, so the measured WP1 throughput may only be
    // equal or lower — but never higher than the law for its own netlist.
    let law = wp_netlist::ThroughputModel::Exact
        .predict(&build_soc(&workload, organization, &rs).to_netlist());
    assert!(
        th1 <= law + 0.05,
        "WP1 {th1:.3} should not beat the law {law:.3}"
    );
    assert!(th2 >= th1 - 1e-9, "WP2 must not lose to WP1");
}

#[test]
fn distant_placements_need_more_relay_stations_than_compact_ones() {
    let fp = case_study_floorplan();
    let model = WireModel::nm130(1.0);
    let workload = extraction_sort(4, 1).unwrap();
    let net = build_soc(&workload, Organization::Pipelined, &RsConfig::ideal()).to_netlist();

    let compact = fp.initial_placement();
    let spread = wp_floorplan::Placement::new(vec![
        (0.0, 0.0),
        (9.0, 0.0),
        (0.0, 9.0),
        (9.0, 9.0),
        (5.0, 5.0),
    ]);
    let compact_total: usize = fp.relay_station_budget(&net, &compact, &model).iter().sum();
    let spread_total: usize = fp.relay_station_budget(&net, &spread, &model).iter().sum();
    assert!(spread_total >= compact_total);
    assert!(
        fp.predicted_throughput(&net, &spread, &model)
            <= fp.predicted_throughput(&net, &compact, &model) + 1e-12
    );
}

#[test]
fn wrapper_overhead_stays_in_the_paper_ballpark() {
    let reports = case_study_overhead_sweep(&CellLibrary::default());
    assert!(!reports.is_empty());
    for r in &reports {
        assert!(
            r.overhead_percent < 2.0,
            "{}: {:.2}%",
            r.label,
            r.overhead_percent
        );
    }
    assert!(reports.iter().any(|r| r.overhead_percent < 1.0));
}
