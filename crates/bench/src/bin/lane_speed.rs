//! Measures the lane-packed bit-parallel kernel against the scalar kernel
//! and writes the machine-readable `BENCH_lanes.json` report that the CI
//! perf gate (`bench_compare`) checks against the committed baseline.
//!
//! For each quick Table-1 workload (Extraction Sort and Matrix Multiply)
//! the same 64 stall variants of the WP1 run are executed twice — 64
//! scalar `LidSimulator`s vs one `LaneLidSimulator` — after asserting the
//! two produce bit-identical per-lane outcomes.  The row's `th_wp2` field
//! carries the wall-clock speedup of the lane kernel (the only gated
//! field: a machine-independent ratio, unlike the raw timings that land in
//! the cycle columns for context).
//!
//! Usage: `lane_speed [--iters N] [--json PATH]`
//!
//! Defaults: `--iters 3` (each side is timed `N` times and the fastest
//! run wins, damping scheduler noise) and `--json BENCH_lanes.json`.

use std::time::Instant;

use wp_bench::{
    bench_report_json, flag_value, json_f64, run_soc_lanes_packed, run_soc_lanes_scalar,
    BenchTable, TableRow,
};
use wp_proc::{extraction_sort, matrix_multiply, Link, RsConfig, Workload};

const MAX: u64 = 10_000_000;

/// Times `f` over `iters` runs and returns the fastest wall-clock seconds.
fn time_best<T>(iters: u32, mut f: impl FnMut() -> T) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let start = Instant::now();
        let result = f();
        best = best.min(start.elapsed().as_secs_f64());
        drop(result);
    }
    best
}

/// Measures one workload: verifies lane-vs-scalar equality, times both
/// sides and returns the report row.
fn measure(label: &str, workload: &Workload, rs: &RsConfig, iters: u32) -> TableRow {
    let scalar = run_soc_lanes_scalar(workload, rs, MAX);
    let packed = run_soc_lanes_packed(workload, rs, MAX);
    assert_eq!(
        scalar, packed,
        "{label}: the lane kernel must reproduce every scalar lane bit-identically"
    );
    let simulated_cycles: u64 = scalar.iter().map(|(cycles, _)| cycles).sum();

    let scalar_seconds = time_best(iters, || run_soc_lanes_scalar(workload, rs, MAX));
    let lane_seconds = time_best(iters, || run_soc_lanes_packed(workload, rs, MAX));
    let speedup = scalar_seconds / lane_seconds;
    println!(
        "{label}: {simulated_cycles} cycles x 64 lanes, scalar {:.1} ms, lane {:.1} ms, \
         speedup {speedup:.2}x",
        1e3 * scalar_seconds,
        1e3 * lane_seconds,
    );

    // TableRow is reused so `bench_compare` gates this report unchanged:
    // the cycle columns carry the raw timings in microseconds (context
    // only) and `th_wp2` the speedup (the gated ratio).  The remaining
    // ratio fields stay 0.0, which the gate skips by design.
    TableRow {
        label: label.to_string(),
        golden_cycles: simulated_cycles,
        wp1_cycles: (1e6 * scalar_seconds) as u64,
        wp2_cycles: (1e6 * lane_seconds) as u64,
        th_wp1: 0.0,
        th_wp2: speedup,
        th_wp1_predicted: 0.0,
        improvement_percent: 0.0,
        proven_n_wp1: None,
        proven_n_wp2: None,
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name| flag_value(&args, name).unwrap_or_else(|e| e.exit());
    let iters: u32 = match flag("--iters") {
        None => 3,
        Some(v) => match v.parse() {
            Ok(n) if n >= 1 => n,
            _ => {
                eprintln!("error: --iters expects a positive integer, got '{v}'");
                std::process::exit(2);
            }
        },
    };
    let json = flag("--json").unwrap_or_else(|| "BENCH_lanes.json".to_string());

    let start = Instant::now();
    let sort = extraction_sort(6, wp_bench::WORKLOAD_SEED)?;
    let matmul = matrix_multiply(3, wp_bench::WORKLOAD_SEED)?;
    let rows = vec![
        measure(
            "Extraction Sort (6) x64 stall lanes",
            &sort,
            &RsConfig::uniform(1, &[Link::CuIc]),
            iters,
        ),
        measure(
            "Matrix Multiply (3x3) x64 stall lanes",
            &matmul,
            &RsConfig::uniform(2, &[Link::CuIc]),
            iters,
        ),
    ];
    let worst = rows.iter().map(|r| r.th_wp2).fold(f64::INFINITY, f64::min);
    println!("worst lane-kernel speedup: {}x", json_f64(worst));

    let tables = vec![BenchTable {
        title: "Lane kernel vs scalar (64 stall lanes, WP1, quick workloads)".to_string(),
        rows,
    }];
    let report = bench_report_json("lanes", 1, 0, start.elapsed().as_secs_f64(), &tables);
    std::fs::write(&json, report)?;
    eprintln!("wrote machine-readable report to {json}");
    Ok(())
}
