//! Offline shim for the `proptest` crate.
//!
//! The build environment of this repository has no access to crates.io, so
//! this in-tree crate re-implements the subset of the proptest 1.x API used
//! by the workspace's property tests: the [`proptest!`] macro, the
//! [`strategy::Strategy`] trait with `prop_map`, range / tuple / `Just` /
//! vec / option / one-of strategies, a minimal character-class string
//! strategy, and the `prop_assert*` macros.
//!
//! Differences from the real crate, by design:
//!
//! * no shrinking — a failing case reports its inputs (via the panic message
//!   of the underlying `assert!`) but is not minimised;
//! * deterministic seeding — every test function derives its seed from its
//!   own name, so failures reproduce exactly across runs;
//! * string strategies support only `[class]{min,max}` patterns (character
//!   ranges and `\n`/`\t`/`\\` escapes), which is all the workspace needs.
//!
//! Swap this crate for the real `proptest` in `Cargo.toml` if the
//! environment ever gains registry access; no test needs to change.

#![warn(missing_docs)]

pub mod strategy;

/// Everything a property test needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop, prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Mirrors the `proptest::prop` module path (`prop::collection`,
/// `prop::option`).
pub mod prop {
    /// Collection strategies (`prop::collection::vec`).
    pub mod collection {
        pub use crate::strategy::vec;
    }
    /// Option strategies (`prop::option::of`).
    pub mod option {
        pub use crate::strategy::option_of as of;
    }
}

/// Per-test configuration, mirroring `proptest::test_runner::ProptestConfig`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real crate defaults to 256; 64 keeps the CI wall-clock low
        // while still exercising each property broadly.
        Self { cases: 64 }
    }
}

/// FNV-1a over the test name: a stable per-test seed so failures reproduce.
#[doc(hidden)]
pub fn seed_from_name(name: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    hash
}

/// Declares property tests: each `#[test] fn name(arg in strategy, ...)`
/// block is run against `cases` randomly generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $( #[test] fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block )*
    ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::strategy::TestRng::new(
                    $crate::seed_from_name(concat!(module_path!(), "::", stringify!($name))),
                );
                for case in 0..config.cases {
                    let _ = case;
                    $( let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng); )+
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a property (maps to `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property (maps to `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Chooses uniformly between several strategies producing the same value
/// type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::boxed($strat) ),+
        ])
    };
}
