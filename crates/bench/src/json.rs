//! Machine-readable bench reports.
//!
//! CI tracks the experiment binaries over time; parsing their pretty-printed
//! tables is brittle, so `table1` (and anything else that produces
//! [`TableRow`]s) can emit a small JSON document instead — rows plus the
//! wall-clock time of the producing sweep — which the workflow uploads as an
//! artifact (`BENCH_table1.json`).
//!
//! The writer is hand-rolled because the workspace builds without registry
//! access (no serde); the emitted subset is plain JSON: objects, arrays,
//! strings with escaping per RFC 8259 (quotes, backslashes and control
//! characters), integers and finite floats.
//!
//! The process-sharding worker protocol (`wp_dist`) reuses the same writer:
//! a worker emits one [`table_row_ndjson`] record per completed row and the
//! parent parses them back with [`table_row_from_json`], reassembling
//! [`TableRow`]s that are field-for-field identical to the ones a
//! single-process run produces (floats round-trip exactly through Rust's
//! shortest-representation formatting).

use std::fmt::Write as _;

use wp_dist::Json;

use crate::TableRow;

/// One titled group of table rows in the report.
#[derive(Debug, Clone)]
pub struct BenchTable {
    /// Human-readable table title (e.g. the Table 1 caption).
    pub title: String,
    /// The measured rows.
    pub rows: Vec<TableRow>,
}

/// Serialises a bench report: the producing binary's name, scheduler
/// configuration, total wall-clock seconds and every measured table.
pub fn bench_report_json(
    bench: &str,
    workers: usize,
    batch: usize,
    wall_seconds: f64,
    tables: &[BenchTable],
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"bench\": {},", json_string(bench));
    let _ = writeln!(out, "  \"workers\": {workers},");
    let _ = writeln!(out, "  \"batch\": {batch},");
    let _ = writeln!(out, "  \"wall_seconds\": {},", json_f64(wall_seconds));
    out.push_str("  \"tables\": [");
    for (t, table) in tables.iter().enumerate() {
        if t > 0 {
            out.push(',');
        }
        out.push_str("\n    {\n");
        let _ = writeln!(out, "      \"title\": {},", json_string(&table.title));
        out.push_str("      \"rows\": [");
        for (r, row) in table.rows.iter().enumerate() {
            if r > 0 {
                out.push(',');
            }
            out.push_str("\n        ");
            push_row(&mut out, row);
        }
        out.push_str("\n      ]\n    }");
    }
    out.push_str("\n  ]\n}\n");
    out
}

fn push_row(out: &mut String, row: &TableRow) {
    out.push('{');
    push_row_members(out, row);
    out.push('}');
}

/// The comma-separated members of one serialised [`TableRow`] (shared by
/// the report writer and the NDJSON worker records).
fn push_row_members(out: &mut String, row: &TableRow) {
    let _ = write!(
        out,
        "\"label\": {}, \"golden_cycles\": {}, \"wp1_cycles\": {}, \
         \"wp2_cycles\": {}, \"th_wp1\": {}, \"th_wp2\": {}, \
         \"th_wp1_predicted\": {}, \"improvement_percent\": {}, \
         \"proven_n_wp1\": {}, \"proven_n_wp2\": {}",
        json_string(&row.label),
        row.golden_cycles,
        row.wp1_cycles,
        row.wp2_cycles,
        json_f64(row.th_wp1),
        json_f64(row.th_wp2),
        json_f64(row.th_wp1_predicted),
        json_f64(row.improvement_percent),
        json_opt_usize(row.proven_n_wp1),
        json_opt_usize(row.proven_n_wp2),
    );
}

/// One NDJSON worker record for a sharded table experiment: the row's
/// global submission index, the table it belongs to, and every
/// [`TableRow`] field.  Single line, no trailing newline.
pub fn table_row_ndjson(index: usize, table: usize, row: &TableRow) -> String {
    let mut out = String::new();
    let _ = write!(out, "{{\"index\": {index}, \"table\": {table}, ");
    push_row_members(&mut out, row);
    out.push('}');
    out
}

/// Parses a worker record produced by [`table_row_ndjson`] back into its
/// table number and [`TableRow`].
///
/// # Errors
///
/// Returns a message naming the missing or ill-typed member.
pub fn table_row_from_json(record: &Json) -> Result<(usize, TableRow), String> {
    Ok((
        record.require_usize("table")?,
        TableRow {
            label: record.require_str("label")?.to_string(),
            golden_cycles: record.require_u64("golden_cycles")?,
            wp1_cycles: record.require_u64("wp1_cycles")?,
            wp2_cycles: record.require_u64("wp2_cycles")?,
            th_wp1: record.require_f64("th_wp1")?,
            th_wp2: record.require_f64("th_wp2")?,
            th_wp1_predicted: record.require_f64("th_wp1_predicted")?,
            improvement_percent: record.require_f64("improvement_percent")?,
            proven_n_wp1: record.require_nullable_usize("proven_n_wp1")?,
            proven_n_wp2: record.require_nullable_usize("proven_n_wp2")?,
        },
    ))
}

/// Formats an optional count as a JSON number or `null` (the equivalence
/// gate was off).
pub fn json_opt_usize(v: Option<usize>) -> String {
    v.map_or_else(|| "null".to_string(), |n| n.to_string())
}

/// Escapes a string per RFC 8259 (quotes, backslashes, control characters).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats a float as a JSON number (NaN/infinity are not representable in
/// JSON and map to `null`; no measured quantity in this workspace is
/// either).  Rust's `{}` float formatting is shortest-round-trip, so a
/// parse of the emitted text recovers the bit-identical `f64`.
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // `{}` prints integral floats without a fraction ("1"), which is a
        // valid JSON number, but keep the fraction for schema stability.
        if s.contains(['.', 'e', 'E']) {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(label: &str) -> TableRow {
        TableRow {
            label: label.to_string(),
            golden_cycles: 100,
            wp1_cycles: 150,
            wp2_cycles: 120,
            th_wp1: 100.0 / 150.0,
            th_wp2: 100.0 / 120.0,
            th_wp1_predicted: 0.75,
            improvement_percent: 25.0,
            proven_n_wp1: None,
            proven_n_wp2: None,
        }
    }

    #[test]
    fn report_contains_rows_and_wall_time() {
        let mut verified = row("All 0 (ideal)");
        verified.proven_n_wp1 = Some(314);
        verified.proven_n_wp2 = Some(159);
        let tables = vec![BenchTable {
            title: "Table 1 \"quick\"".to_string(),
            rows: vec![verified, row("Only RF-DC")],
        }];
        let json = bench_report_json("table1", 4, 1, 1.25, &tables);
        assert!(json.contains("\"bench\": \"table1\""));
        assert!(json.contains("\"wall_seconds\": 1.25"));
        assert!(json.contains("\"workers\": 4"));
        assert!(json.contains("\"title\": \"Table 1 \\\"quick\\\"\""));
        assert!(json.contains("\"label\": \"Only RF-DC\""));
        assert!(json.contains("\"golden_cycles\": 100"));
        assert!(json.contains("\"improvement_percent\": 25.0"));
        // The equivalence gate surfaces proven N as a number, or null when
        // the gate was off for that row.
        assert!(json.contains("\"proven_n_wp1\": 314"));
        assert!(json.contains("\"proven_n_wp2\": 159"));
        assert!(json.contains("\"proven_n_wp1\": null"));
    }

    #[test]
    fn escaping_covers_controls_and_quotes() {
        assert_eq!(json_string("a\"b\\c\nd\u{1}"), "\"a\\\"b\\\\c\\nd\\u0001\"");
        assert_eq!(json_f64(2.0), "2.0");
        assert_eq!(json_f64(0.5), "0.5");
        assert_eq!(json_f64(f64::NAN), "null");
    }

    /// Labels with every escaping hazard — quotes, backslashes, newlines,
    /// tabs, raw control characters, non-ASCII — survive the
    /// writer → NDJSON parser round trip byte-for-byte, and so do the
    /// floats and the optional proven-N counts.
    #[test]
    fn table_rows_round_trip_through_the_ndjson_parser() {
        let labels = [
            "plain",
            "All 1 \"quoted\" (no CU-IC)",
            "back\\slash",
            "new\nline and \t tab",
            "ctrl\u{1}\u{1f}\u{7f}",
            "caffè ↯ 日本",
            "",
        ];
        for (i, label) in labels.iter().enumerate() {
            let mut original = row(label);
            original.th_wp1 = 1.0 / 3.0; // a float with no finite decimal
            original.proven_n_wp1 = (i % 2 == 0).then_some(i * 37);
            let line = table_row_ndjson(i, i % 3, &original);
            assert!(!line.contains('\n'), "NDJSON records must be one line");
            let record = Json::parse(&line).expect("worker record parses");
            assert_eq!(record.get("index").and_then(Json::as_usize), Some(i));
            let (table, parsed) = table_row_from_json(&record).expect("row reassembles");
            assert_eq!(table, i % 3);
            assert_eq!(parsed, original, "label {label:?}");
        }
    }

    /// The full report document parses with the NDJSON parser too (same
    /// writer, same escaping), so the rows inside it round-trip as well.
    #[test]
    fn the_report_document_is_parseable_json() {
        let tables = vec![BenchTable {
            title: "Table \u{1} \"one\"".to_string(),
            rows: vec![row("a\"b\\c\nd")],
        }];
        let report = bench_report_json("table1", 2, 0, 0.125, &tables);
        let doc = Json::parse(&report).expect("report parses");
        assert_eq!(
            doc.get("tables").unwrap().as_arr().unwrap()[0]
                .get("title")
                .and_then(Json::as_str),
            Some("Table \u{1} \"one\"")
        );
        let row_json = &doc.get("tables").unwrap().as_arr().unwrap()[0]
            .get("rows")
            .unwrap()
            .as_arr()
            .unwrap()[0];
        assert_eq!(
            row_json.get("label").and_then(Json::as_str),
            Some("a\"b\\c\nd")
        );
    }

    #[test]
    fn malformed_worker_records_name_the_offending_member() {
        let record = Json::parse(r#"{"table": 0, "label": "x"}"#).unwrap();
        let err = table_row_from_json(&record).unwrap_err();
        assert!(err.contains("golden_cycles"), "{err}");
        let record = Json::parse(r#"{"label": "x"}"#).unwrap();
        let err = table_row_from_json(&record).unwrap_err();
        assert!(err.contains("table"), "{err}");
        let record = Json::parse(r#"{"table": 0, "label": 3}"#).unwrap();
        let err = table_row_from_json(&record).unwrap_err();
        assert!(err.contains("label"), "{err}");
    }
}
