//! Relay stations: the wire-pipeline element.
//!
//! A relay station (RS) is the finite-state machine of Carloni et al. that
//! replaces a plain pipeline register on a long wire.  It contains the
//! pipeline register proper (*main*) plus one auxiliary register used to save
//! an in-flight valid token when a stop arrives, so that no data is ever
//! lost.  When the auxiliary register is also full, the stop is propagated to
//! the previous relay station, and ultimately to the source shell.
//!
//! The RS in this crate uses *registered* stop signals, i.e. the stop a
//! station asserts is observed by its upstream neighbour one clock cycle
//! later.  This matches the hardware implementation (no combinational
//! back-pressure path across the chip) and is why the auxiliary register is
//! needed.

use crate::error::ProtocolError;
use crate::token::Token;

/// One relay station on a latency-insensitive channel.
///
/// The station is clocked in two phases, mirroring a Moore machine:
///
/// 1. during the cycle, [`RelayStation::output`] and [`RelayStation::stop_out`]
///    expose the values driven on the downstream data wire and the upstream
///    stop wire (both come from registers);
/// 2. at the end of the cycle, [`RelayStation::update`] latches the upstream
///    data observed this cycle and the downstream stop observed this cycle.
///
/// # Examples
///
/// ```
/// use wp_core::{RelayStation, Token};
///
/// let mut rs = RelayStation::new();
/// // cycle 0: empty, upstream sends 7, downstream does not stop
/// assert_eq!(rs.output(), Token::Void);
/// rs.update(Token::Valid(7u32), false)?;
/// // cycle 1: the token is now visible downstream
/// assert_eq!(rs.output(), Token::Valid(7));
/// # Ok::<(), wp_core::ProtocolError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RelayStation<V> {
    main: Token<V>,
    aux: Token<V>,
    stop_reg: bool,
}

impl<V: Clone> RelayStation<V> {
    /// Creates an empty relay station (both registers void, stop deasserted).
    pub fn new() -> Self {
        Self {
            main: Token::Void,
            aux: Token::Void,
            stop_reg: false,
        }
    }

    /// The token driven on the downstream data wire this cycle.
    pub fn output(&self) -> Token<V> {
        self.main.clone()
    }

    /// Borrows the token driven on the downstream data wire this cycle.
    pub fn output_ref(&self) -> &Token<V> {
        &self.main
    }

    /// The stop signal driven towards the upstream neighbour this cycle.
    pub fn stop_out(&self) -> bool {
        self.stop_reg
    }

    /// Number of valid tokens currently stored (0, 1 or 2).
    pub fn occupancy(&self) -> usize {
        usize::from(self.main.is_valid()) + usize::from(self.aux.is_valid())
    }

    /// Returns `true` when the station stores no valid token.
    pub fn is_empty(&self) -> bool {
        self.occupancy() == 0
    }

    /// End-of-cycle state update.
    ///
    /// `input` is the token observed on the upstream data wire during this
    /// cycle and `stop_in` the stop observed on the downstream stop wire.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::RelayOverflow`] if a valid token arrives
    /// while both registers are full and the upstream was allowed to send
    /// (this indicates a protocol violation, not a normal condition).
    pub fn update(&mut self, input: Token<V>, stop_in: bool) -> Result<(), ProtocolError> {
        // The upstream neighbour observed `stop_reg` this cycle, so it was
        // allowed to send only when `stop_reg` was false.  A valid token seen
        // while we asserted stop is simply the upstream re-presenting the same
        // datum (it must hold it until we deassert), so it is ignored here.
        let accept = !self.stop_reg && input.is_valid();
        // The downstream neighbour latches our main token this cycle unless it
        // asserted stop.
        let send = !stop_in && self.main.is_valid();

        if send {
            // The main register frees: promote aux if present, else take the
            // incoming token directly.
            if self.aux.is_valid() {
                self.main = self.aux.take();
                if accept {
                    self.aux = input;
                }
            } else {
                self.main = if accept { input } else { Token::Void };
            }
        } else if self.main.is_void() {
            // Nothing stored and nothing sent: an accepted token lands in main.
            if accept {
                self.main = input;
            }
        } else if accept {
            // Blocked downstream with main occupied: the token must go to aux.
            if self.aux.is_valid() {
                return Err(ProtocolError::RelayOverflow);
            }
            self.aux = input;
        }

        // Assert the stop towards upstream whenever both registers are now
        // occupied: one more token could still arrive next cycle only if we
        // had left the stop deasserted.
        self.stop_reg = self.occupancy() == 2;
        Ok(())
    }

    /// Resets the station to the empty state.
    pub fn reset(&mut self) {
        self.main = Token::Void;
        self.aux = Token::Void;
        self.stop_reg = false;
    }
}

/// A chain of relay stations placed on one channel.
///
/// Wire pipelining segments a long wire into `n` stages; this type manages
/// the per-cycle update of the whole chain and exposes the chain's endpoints
/// (data out of the last station, stop out of the first station).
///
/// An empty chain (`n = 0`) degenerates to a plain wire: the output equals
/// the input of the same cycle and the stop is forwarded combinationally.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RelayChain<V> {
    stations: Vec<RelayStation<V>>,
}

impl<V: Clone> RelayChain<V> {
    /// Creates a chain of `n` empty relay stations.
    pub fn new(n: usize) -> Self {
        Self {
            stations: (0..n).map(|_| RelayStation::new()).collect(),
        }
    }

    /// Number of relay stations in the chain.
    pub fn len(&self) -> usize {
        self.stations.len()
    }

    /// Returns `true` when the chain contains no relay station (plain wire).
    pub fn is_empty(&self) -> bool {
        self.stations.is_empty()
    }

    /// Total number of valid tokens stored in the chain.
    pub fn occupancy(&self) -> usize {
        self.stations.iter().map(RelayStation::occupancy).sum()
    }

    /// Token presented to the consumer this cycle, given the producer's token
    /// `input` for this cycle.
    ///
    /// With at least one station, the consumer sees the last station's main
    /// register; with zero stations the wire is transparent and the consumer
    /// sees `input` directly.
    pub fn output(&self, input: &Token<V>) -> Token<V> {
        self.output_ref(input).clone()
    }

    /// Borrows the token presented to the consumer this cycle (the borrowed
    /// counterpart of [`RelayChain::output`], used by the simulator kernel to
    /// sample wires without cloning payloads).
    pub fn output_ref<'a>(&'a self, input: &'a Token<V>) -> &'a Token<V> {
        match self.stations.last() {
            Some(last) => last.output_ref(),
            None => input,
        }
    }

    /// Stop presented to the producer this cycle, given the consumer's stop
    /// `stop_in` for this cycle.
    pub fn stop_out(&self, stop_in: bool) -> bool {
        match self.stations.first() {
            Some(first) => first.stop_out(),
            None => stop_in,
        }
    }

    /// End-of-cycle update of every station in the chain.
    ///
    /// `input` is the producer's token this cycle and `stop_in` the
    /// consumer's stop this cycle.
    ///
    /// The chain is walked from the consumer end back to the producer end so
    /// that every station still observes its neighbours' *pre-update* wires
    /// (the whole chain advances on the same clock edge) without buffering
    /// them: the only state carried across iterations is the one stop bit a
    /// station drove towards its upstream neighbour.  This keeps the
    /// per-cycle update allocation-free; a token is cloned only when it
    /// actually enters a station.
    ///
    /// # Errors
    ///
    /// Propagates [`ProtocolError::RelayOverflow`] from any station.
    pub fn update(&mut self, input: &Token<V>, stop_in: bool) -> Result<(), ProtocolError> {
        let n = self.stations.len();
        // The stop observed by the station being updated, i.e. the
        // pre-update stop of its downstream neighbour (the consumer's stop
        // for the last station).
        let mut downstream_stop = stop_in;
        for i in (0..n).rev() {
            // Save this station's pre-update stop: it is what the upstream
            // neighbour (updated next) observed this cycle.
            let upstream_observes = self.stations[i].stop_out();
            // A station ignores its data wire while it asserts stop, so the
            // clone of the upstream token is skipped entirely in that case.
            let data_in = if upstream_observes {
                Token::Void
            } else if i == 0 {
                input.clone()
            } else {
                self.stations[i - 1].output()
            };
            self.stations[i].update(data_in, downstream_stop)?;
            downstream_stop = upstream_observes;
        }
        Ok(())
    }

    /// The seed implementation of [`RelayChain::update`]: buffers every
    /// inter-station wire in freshly allocated vectors before updating the
    /// stations front-to-back.
    ///
    /// Behaviourally identical to `update` (the kernel-equivalence property
    /// tests assert this); kept as the reference step for
    /// `wp_sim::NaiveSimulator`, which the criterion benches use as the
    /// baseline the arena kernel is measured against.
    ///
    /// # Errors
    ///
    /// Propagates [`ProtocolError::RelayOverflow`] from any station.
    pub fn update_buffered(&mut self, input: Token<V>, stop_in: bool) -> Result<(), ProtocolError> {
        if self.stations.is_empty() {
            return Ok(());
        }
        // Values currently driven between stations (station i drives its
        // successor); captured before any update so the whole chain advances
        // consistently within the same clock edge.
        let inter_data: Vec<Token<V>> = self.stations.iter().map(RelayStation::output).collect();
        let inter_stop: Vec<bool> = self.stations.iter().map(RelayStation::stop_out).collect();

        let n = self.stations.len();
        for (i, station) in self.stations.iter_mut().enumerate() {
            let data_in = if i == 0 {
                input.clone()
            } else {
                inter_data[i - 1].clone()
            };
            let stop_from_downstream = if i == n - 1 {
                stop_in
            } else {
                inter_stop[i + 1]
            };
            station.update(data_in, stop_from_downstream)?;
        }
        Ok(())
    }

    /// Appends the chain's control-plane state to `out`: one word per
    /// station packing the validity of the main and auxiliary registers and
    /// the registered stop bit.  Token payloads are excluded — a relay
    /// station's next-state function reads only these three bits plus the
    /// validity of its data input, so the chain's contribution to the
    /// system's autonomous control plane is exactly these words (see
    /// [`crate::Shell::control_state`]).
    pub fn control_state(&self, out: &mut Vec<u64>) {
        for s in &self.stations {
            out.push(
                u64::from(s.main.is_valid())
                    | (u64::from(s.aux.is_valid()) << 1)
                    | (u64::from(s.stop_reg) << 2),
            );
        }
    }

    /// Resets every station to the empty state.
    pub fn reset(&mut self) {
        for s in &mut self.stations {
            s.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Streams `values` into a relay station with no back-pressure and
    /// returns the valid tokens observed at the output over `cycles` cycles.
    fn stream_through(values: &[u32], cycles: usize) -> Vec<u32> {
        let mut rs = RelayStation::new();
        let mut seen = Vec::new();
        for cycle in 0..cycles {
            if let Token::Valid(v) = rs.output() {
                seen.push(v);
            }
            let input = values.get(cycle).copied().map_or(Token::Void, Token::Valid);
            rs.update(input, false).unwrap();
        }
        seen
    }

    #[test]
    fn passes_tokens_with_one_cycle_latency() {
        let seen = stream_through(&[1, 2, 3, 4], 8);
        assert_eq!(seen, vec![1, 2, 3, 4]);
    }

    #[test]
    fn empty_station_outputs_void() {
        let rs: RelayStation<u32> = RelayStation::new();
        assert_eq!(rs.output(), Token::Void);
        assert!(!rs.stop_out());
        assert!(rs.is_empty());
    }

    #[test]
    fn stop_holds_data_without_loss() {
        let mut rs = RelayStation::new();
        // Cycle 0: receive 1 while downstream stops.
        rs.update(Token::Valid(1u32), true).unwrap();
        assert_eq!(rs.output(), Token::Valid(1));
        assert_eq!(rs.occupancy(), 1);
        // Cycle 1: receive 2 while still stopped -> goes to aux, stop raised.
        rs.update(Token::Valid(2), true).unwrap();
        assert_eq!(rs.occupancy(), 2);
        assert!(rs.stop_out());
        // Cycle 2: upstream saw the stop, sends nothing; downstream unblocks.
        rs.update(Token::Void, false).unwrap();
        assert_eq!(rs.output(), Token::Valid(2));
        assert_eq!(rs.occupancy(), 1);
        // Cycle 3: drain the second token.
        rs.update(Token::Void, false).unwrap();
        assert_eq!(rs.output(), Token::Void);
        assert!(rs.is_empty());
    }

    #[test]
    fn ignores_input_while_stop_asserted() {
        let mut rs = RelayStation::new();
        rs.update(Token::Valid(1u32), true).unwrap();
        rs.update(Token::Valid(2), true).unwrap();
        assert!(rs.stop_out());
        // Upstream re-presents 2 because it saw our stop only now; the station
        // must not double-store it.
        rs.update(Token::Valid(2), true).unwrap();
        assert_eq!(rs.occupancy(), 2);
    }

    #[test]
    fn overflow_detected_when_protocol_violated() {
        let mut rs = RelayStation::new();
        rs.update(Token::Valid(1u32), true).unwrap();
        // Force a violation: clear the stop register as if the upstream were
        // allowed to send, then push two more while blocked.
        rs.stop_reg = false;
        rs.update(Token::Valid(2), true).unwrap();
        rs.stop_reg = false;
        let err = rs.update(Token::Valid(3), true).unwrap_err();
        assert_eq!(err, ProtocolError::RelayOverflow);
    }

    #[test]
    fn reset_clears_state() {
        let mut rs = RelayStation::new();
        rs.update(Token::Valid(1u32), true).unwrap();
        rs.update(Token::Valid(2), true).unwrap();
        rs.reset();
        assert!(rs.is_empty());
        assert!(!rs.stop_out());
    }

    #[test]
    fn chain_of_zero_is_transparent() {
        let chain: RelayChain<u32> = RelayChain::new(0);
        assert!(chain.is_empty());
        assert_eq!(chain.output(&Token::Valid(9)), Token::Valid(9));
        assert!(chain.stop_out(true));
        assert!(!chain.stop_out(false));
    }

    #[test]
    fn chain_latency_equals_length() {
        for n in 1..5usize {
            let mut chain = RelayChain::new(n);
            let mut first_seen = None;
            for cycle in 0..20 {
                let input = if cycle == 0 {
                    Token::Valid(42u32)
                } else {
                    Token::Void
                };
                if chain.output(&input).is_valid() && first_seen.is_none() {
                    first_seen = Some(cycle);
                }
                chain.update(&input, false).unwrap();
            }
            // A token injected at cycle 0 appears at the output after n cycles.
            assert_eq!(first_seen, Some(n), "chain of {n} stations");
        }
    }

    #[test]
    fn chain_streams_at_full_rate() {
        let mut chain = RelayChain::new(3);
        let mut received = Vec::new();
        for cycle in 0..40u32 {
            if let Token::Valid(v) = chain.output(&Token::Valid(cycle)) {
                received.push(v);
            }
            chain.update(&Token::Valid(cycle), false).unwrap();
        }
        // After the 3-cycle fill latency the chain sustains one token/cycle.
        assert_eq!(received, (0..37).collect::<Vec<_>>());
    }

    #[test]
    fn chain_control_state_tracks_registers_not_payloads() {
        let mut a = RelayChain::new(2);
        let mut b = RelayChain::new(2);
        a.update(&Token::Valid(1u32), false).unwrap();
        b.update(&Token::Valid(2u32), false).unwrap();
        let (mut sa, mut sb) = (Vec::new(), Vec::new());
        a.control_state(&mut sa);
        b.control_state(&mut sb);
        assert_eq!(sa, sb, "payloads must not leak into the control state");
        assert_eq!(sa.len(), 2, "one word per station");
        // The token advancing down the chain changes the state words.
        a.update(&Token::Void, false).unwrap();
        let mut moved = Vec::new();
        a.control_state(&mut moved);
        assert_ne!(sa, moved);
    }

    #[test]
    fn chain_backpressure_preserves_all_tokens() {
        let mut chain = RelayChain::new(2);
        let mut received = Vec::new();
        let mut next_to_send = 0u32;
        for cycle in 0..60 {
            // Downstream accepts only every third cycle.
            let stop_in = cycle % 3 != 0;
            let producer_blocked = chain.stop_out(stop_in);
            let input = if producer_blocked || next_to_send >= 10 {
                Token::Void
            } else {
                let t = Token::Valid(next_to_send);
                next_to_send += 1;
                t
            };
            if !stop_in {
                if let Token::Valid(v) = chain.output(&input) {
                    received.push(v);
                }
            }
            chain.update(&input, stop_in).unwrap();
        }
        assert_eq!(received, (0..10).collect::<Vec<_>>());
    }
}
