//! Reproduces Table 1 of the paper: Extraction Sort and Matrix Multiply on
//! the pipelined processor, over the relay-station configuration sweep,
//! comparing WP1 (strict shells) with WP2 (oracle shells).
//!
//! Usage: `table1 [--program sort|matmul|both]`

use wp_bench::{
    format_table, matmul_workload, run_table, sort_workload, table1_base_configs,
    table1_two_rs_configs,
};
use wp_proc::Organization;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let program = args
        .iter()
        .position(|a| a == "--program")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .or_else(|| args.first().cloned().filter(|a| !a.starts_with("--")))
        .unwrap_or_else(|| "both".to_string());

    if program == "sort" || program == "both" {
        let workload = sort_workload();
        let mut configs = table1_base_configs();
        configs.push(wp_bench::optimal_config(&workload, Organization::Pipelined, 1));
        let rows =
            run_table(&workload, Organization::Pipelined, &configs).expect("sort table runs");
        println!(
            "{}",
            format_table(
                &format!(
                    "Table 1 (upper): Extraction Sort, pipelined ({} elements)",
                    wp_bench::SORT_ELEMENTS
                ),
                &rows
            )
        );
    }
    if program == "matmul" || program == "both" {
        let workload = matmul_workload();
        let mut configs = table1_base_configs();
        configs.push(wp_bench::optimal_config(&workload, Organization::Pipelined, 1));
        configs.extend(table1_two_rs_configs());
        configs.push(wp_bench::optimal_config(&workload, Organization::Pipelined, 2));
        let rows =
            run_table(&workload, Organization::Pipelined, &configs).expect("matmul table runs");
        println!(
            "{}",
            format_table(
                &format!(
                    "Table 1 (lower): Matrix Multiply, pipelined ({0}x{0})",
                    wp_bench::MATMUL_DIM
                ),
                &rows
            )
        );
    }
}
