//! Format-level tests of the netlist description language: the canonical
//! round-trip property (`parse(print(s)) == s`) and a line-numbered error
//! for every malformed-directive class the parser knows.

use proptest::prelude::*;
use wp_spec::{BlockSpec, ChannelDecl, Endpoint, NetlistSpec, SpecError};

/// A minimal valid two-block loop (8 lines): every port used exactly once,
/// so appending one bad directive makes it line 9.
const LOOP: &str = "\
block a kind=fan
port a in i
port a out o
block b kind=fan
port b in i
port b out o
channel ab from=a.o to=b.i
channel ba from=b.o to=a.i
";

/// Parses and unwraps the expected [`SpecError::Parse`].
fn parse_err(text: &str) -> (usize, String) {
    match NetlistSpec::parse(text) {
        Err(SpecError::Parse { line, message }) => (line, message),
        other => panic!("expected a parse error, got {other:?}"),
    }
}

#[test]
fn every_malformed_directive_class_names_its_line() {
    // (appended directive, expected message fragment); each lands on
    // line 9, right after the valid LOOP prefix.
    let cases: &[(&str, &str)] = &[
        // Directive dispatch and tokenization.
        ("wire x", "unknown directive 'wire'"),
        ("block c kind=\"fan", "unterminated '\"' quote"),
        // block
        ("block", "expected 'block <name> kind=<kind> ...'"),
        (
            "block a.b kind=fan",
            "block name 'a.b' may not contain '.' or '='",
        ),
        ("block a kind=fan", "duplicate block name 'a'"),
        ("block c fan", "expected key=value, got 'fan'"),
        ("block c kind=fan kind=fan", "duplicate key 'kind'"),
        ("block c note=1", "block 'c' is missing kind=<kind>"),
        // port
        ("port a in", "expected 'port <block> in|out <name>'"),
        (
            "port a in i2 extra",
            "expected 'port <block> in|out <name>'",
        ),
        (
            "port a in x.y",
            "port name 'x.y' may not contain '.' or '='",
        ),
        (
            "port a inout x",
            "port direction 'inout'; expected in or out",
        ),
        ("port z in x", "port on undeclared block 'z'"),
        ("port a in i", "duplicate input port 'i' on block 'a'"),
        ("port a out o", "duplicate output port 'o' on block 'a'"),
        // channel
        ("channel", "expected 'channel <name> from=... to=...'"),
        (
            "channel a=b from=a.o to=b.i",
            "channel name 'a=b' may not contain",
        ),
        ("channel ab from=a.o to=b.i", "duplicate channel name 'ab'"),
        ("channel x from=a.o from=a.o to=b.i", "duplicate key 'from'"),
        (
            "channel x to=b.i",
            "channel 'x' is missing from=<block>.<port>",
        ),
        (
            "channel x from=a.o",
            "channel 'x' is missing to=<block>.<port>",
        ),
        (
            "channel x from=ao to=b.i",
            "endpoint 'ao' is not <block>.<port>",
        ),
        (
            "channel x from=.o to=b.i",
            "endpoint '.o' is not <block>.<port>",
        ),
        (
            "channel x from=a.o to=b.i relay=-1",
            "channel 'x' has relay '-1'; expected a non-negative integer",
        ),
        (
            "channel x from=a.o to=b.i latency=fast",
            "channel 'x' has latency 'fast'; expected a non-negative integer",
        ),
        (
            "channel x from=a.o to=b.i color=red",
            "unknown key 'color' for channel 'x'",
        ),
        // Eager endpoint resolution names the channel line, not line 0.
        (
            "channel x from=z.o to=b.i",
            "channel 'x': endpoint 'z.o' references unknown block",
        ),
        (
            "channel x from=a.nope to=b.i",
            "channel 'x': block 'a' has no output port 'nope'",
        ),
        (
            "channel x from=a.i to=b.i",
            "channel 'x': block 'a' has no output port 'i'",
        ),
        // relay / latency overrides
        ("relay ab", "expected 'relay <channel> <count>'"),
        ("relay zz 1", "undeclared channel 'zz'"),
        (
            "relay ab many",
            "relay count 'many'; expected a non-negative integer",
        ),
        ("latency ab 1 2", "expected 'latency <channel> <periods>'"),
        ("latency zz 1", "undeclared channel 'zz'"),
        (
            "latency ab soon",
            "latency 'soon'; expected a non-negative integer",
        ),
        // budget
        ("budget", "expected 'budget <total>'"),
        ("budget 1 2", "expected 'budget <total>'"),
        (
            "budget nine",
            "budget 'nine'; expected a non-negative integer",
        ),
    ];
    for (bad, fragment) in cases {
        let (line, message) = parse_err(&format!("{LOOP}{bad}\n"));
        assert_eq!(line, 9, "directive {bad:?} reported line {line}: {message}");
        assert!(
            message.contains(fragment),
            "directive {bad:?}: message {message:?} does not contain {fragment:?}"
        );
    }
}

#[test]
fn duplicate_budget_names_the_second_directive() {
    let (line, message) = parse_err(&format!("{LOOP}budget 1\nbudget 2\n"));
    assert_eq!(line, 10);
    assert!(message.contains("duplicate budget directive"), "{message}");
}

#[test]
fn line_numbers_count_comments_and_blank_lines() {
    let text = "# header\n\nblock a kind=fan\nport a in i\n\nwire oops\n";
    let (line, message) = parse_err(text);
    assert_eq!(line, 6, "{message}");
}

#[test]
fn whole_spec_violations_report_line_zero() {
    let cases: &[(String, &str)] = &[
        (String::new(), "the spec declares no blocks"),
        (
            "# only comments\n".to_string(),
            "the spec declares no blocks",
        ),
        (
            format!("{LOOP}port a in spare\n"),
            "input port 'a.spare' is fed by 0 channels (expected 1)",
        ),
        (
            format!("{LOOP}port b in i2\nchannel x from=a.o to=b.i2\n"),
            "output port 'a.o' drives 2 channels (expected 1)",
        ),
        (
            format!("{}budget 1\n", LOOP.replace("to=b.i\n", "to=b.i relay=2\n")),
            "total relay stations 2 exceed budget 1",
        ),
    ];
    for (text, fragment) in cases {
        let (line, message) = parse_err(text);
        assert_eq!(line, 0, "{message}");
        assert!(message.contains(fragment), "{message:?} vs {fragment:?}");
    }
}

#[test]
fn quoted_attributes_and_inline_knobs_round_trip() {
    let text = "block a kind=fan note=\"two words\" empty=\"\"\n\
                port a in i\nport a out o\n\
                channel aa from=a.o to=a.i relay=1 latency=3\n\
                budget 2\n";
    let spec = NetlistSpec::parse(text).expect("parses");
    let block = spec.find_block("a").expect("declared");
    assert_eq!(block.attr("note"), Some("two words"));
    assert_eq!(block.attr("empty"), Some(""));
    let channel = spec.find_channel("aa").expect("declared");
    assert_eq!((channel.relay_stations, channel.latency), (1, Some(3)));

    let printed = spec.print();
    let reparsed = NetlistSpec::parse(&printed).expect("canonical text parses");
    assert_eq!(spec, reparsed);
    assert_eq!(printed, reparsed.print(), "printing is a fixed point");
}

#[test]
fn standalone_overrides_normalize_into_channel_lines() {
    let text = format!("{LOOP}relay ab 2\nlatency ba 5\nbudget 2\n");
    let spec = NetlistSpec::parse(&text).expect("parses");
    assert_eq!(spec.find_channel("ab").expect("declared").relay_stations, 2);
    assert_eq!(spec.find_channel("ba").expect("declared").latency, Some(5));

    let printed = spec.print();
    assert!(
        printed.contains("channel ab from=a.o to=b.i relay=2"),
        "{printed}"
    );
    assert!(
        printed.contains("channel ba from=b.o to=a.i latency=5"),
        "{printed}"
    );
    assert_eq!(NetlistSpec::parse(&printed).expect("parses"), spec);
}

/// A ring of `n` one-in/one-out blocks: always checks, so it can carry
/// arbitrary attribute lists, relay counts, latencies and budgets into the
/// round-trip property.
fn ring_spec(
    n: usize,
    attrs: &[(String, String)],
    relays: &[usize],
    latencies: &[Option<u64>],
    budget_slack: Option<usize>,
) -> NetlistSpec {
    let mut spec = NetlistSpec {
        blocks: (0..n)
            .map(|b| BlockSpec {
                name: format!("b{b}"),
                kind: "fan".to_string(),
                attrs: attrs.to_vec(),
                inputs: vec!["prev".to_string()],
                outputs: vec!["next".to_string()],
            })
            .collect(),
        channels: (0..n)
            .map(|b| ChannelDecl {
                name: format!("c{b}"),
                from: Endpoint {
                    block: format!("b{b}"),
                    port: "next".to_string(),
                },
                to: Endpoint {
                    block: format!("b{}", (b + 1) % n),
                    port: "prev".to_string(),
                },
                relay_stations: relays[b],
                latency: latencies[b],
            })
            .collect(),
        budget: None,
    };
    spec.budget = budget_slack.map(|slack| spec.total_relay_stations() + slack);
    spec
}

// The round-trip property on the parser's own turf: arbitrary valid specs
// — including attribute values that need quoting (spaces, empty) — print
// to text that re-parses to an identical spec, and printing is stable.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn arbitrary_specs_round_trip_through_the_canonical_printer(
        n in 1usize..6,
        raw_attrs in prop::collection::vec(("[a-z]{1,5}", "[a-z 0-9]{0,7}"), 0usize..4),
        relays in prop::collection::vec(0usize..4, 6usize),
        latency_draws in prop::collection::vec(0u64..6, 6usize),
        budget_slack in prop::option::of(0usize..8),
    ) {
        // Attribute keys must be unique and must not shadow `kind`.
        let mut attrs: Vec<(String, String)> = Vec::new();
        for (key, value) in raw_attrs {
            if key != "kind" && attrs.iter().all(|(k, _)| *k != key) {
                attrs.push((key, value));
            }
        }
        let latencies: Vec<Option<u64>> =
            latency_draws.iter().map(|&l| (l > 0).then_some(l)).collect();
        let spec = ring_spec(n, &attrs, &relays, &latencies, budget_slack);
        prop_assert!(spec.check().is_ok());

        let printed = spec.print();
        let reparsed = NetlistSpec::parse(&printed).expect("canonical text parses");
        prop_assert_eq!(&spec, &reparsed);
        prop_assert_eq!(printed, reparsed.print());
    }
}
