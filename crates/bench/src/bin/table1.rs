//! Reproduces Table 1 of the paper: Extraction Sort and Matrix Multiply on
//! the pipelined processor, over the relay-station configuration sweep,
//! comparing WP1 (strict shells) with WP2 (oracle shells).
//!
//! The 2 × configurations wire-pipelined runs of each table are swept across
//! worker threads by `wp_sim::SweepRunner`.
//!
//! Usage: `table1 [--program sort|matmul|both] [--quick] [--workers N]`
//!
//! `--quick` shrinks the workloads and the configuration sweep to a few
//! seconds of wall-clock; CI uses it as the smoke run.

use wp_bench::{
    format_table, matmul_workload, run_table_on, sort_workload, table1_base_configs,
    table1_two_rs_configs,
};
use wp_proc::{extraction_sort, matrix_multiply, Organization, RsConfig, Workload};
use wp_sim::SweepRunner;

struct Args {
    program: String,
    quick: bool,
    workers: usize,
}

fn parse_args() -> Args {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag_value = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    Args {
        program: flag_value("--program")
            .or_else(|| args.first().cloned().filter(|a| !a.starts_with("--")))
            .unwrap_or_else(|| "both".to_string()),
        quick: args.iter().any(|a| a == "--quick"),
        workers: flag_value("--workers").map_or(0, |w| {
            w.parse().unwrap_or_else(|_| {
                eprintln!("error: --workers expects a non-negative integer, got '{w}'");
                std::process::exit(2);
            })
        }),
    }
}

fn sort_table(args: &Args, runner: &SweepRunner) {
    let (workload, label): (Workload, String) = if args.quick {
        (
            extraction_sort(6, wp_bench::WORKLOAD_SEED).expect("sort workload assembles"),
            "Table 1 (upper, quick): Extraction Sort, pipelined (6 elements)".into(),
        )
    } else {
        (
            sort_workload(),
            format!(
                "Table 1 (upper): Extraction Sort, pipelined ({} elements)",
                wp_bench::SORT_ELEMENTS
            ),
        )
    };
    let mut configs = table1_base_configs();
    if !args.quick {
        configs.push(wp_bench::optimal_config(
            &workload,
            Organization::Pipelined,
            1,
        ));
    }
    let rows = run_table_on(runner, &workload, Organization::Pipelined, &configs)
        .expect("sort table runs");
    println!("{}", format_table(&label, &rows));
}

fn matmul_table(args: &Args, runner: &SweepRunner) {
    let (workload, label): (Workload, String) = if args.quick {
        (
            matrix_multiply(3, wp_bench::WORKLOAD_SEED).expect("matmul workload assembles"),
            "Table 1 (lower, quick): Matrix Multiply, pipelined (3x3)".into(),
        )
    } else {
        (
            matmul_workload(),
            format!(
                "Table 1 (lower): Matrix Multiply, pipelined ({0}x{0})",
                wp_bench::MATMUL_DIM
            ),
        )
    };
    let mut configs: Vec<(String, RsConfig)> = table1_base_configs();
    if !args.quick {
        configs.push(wp_bench::optimal_config(
            &workload,
            Organization::Pipelined,
            1,
        ));
        configs.extend(table1_two_rs_configs());
        configs.push(wp_bench::optimal_config(
            &workload,
            Organization::Pipelined,
            2,
        ));
    }
    let rows = run_table_on(runner, &workload, Organization::Pipelined, &configs)
        .expect("matmul table runs");
    println!("{}", format_table(&label, &rows));
}

fn main() {
    let args = parse_args();
    let runner = SweepRunner::new(args.workers);
    eprintln!(
        "sweeping wire-pipelined runs across {} worker thread(s)",
        runner.workers()
    );
    if args.program == "sort" || args.program == "both" {
        sort_table(&args, &runner);
    }
    if args.program == "matmul" || args.program == "both" {
        matmul_table(&args, &runner);
    }
}
