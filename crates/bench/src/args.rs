//! Sweep-scheduler flags shared by every experiment binary.
//!
//! All experiment binaries (and the `matmul_sweep` example) drive their
//! wire-pipelined runs through `wp_sim::SweepRunner`; this module gives them
//! one uniform way to control the scheduler from the command line:
//!
//! * `--workers N` — worker threads (`0`, the default, selects
//!   `std::thread::available_parallelism`);
//! * `--batch N` — scenario indices transferred per steal (`0`, the
//!   default, selects the auto heuristic; `1` moves work one scenario at a
//!   time).  Workers always lease one scenario per deque lock, so queued
//!   work stays stealable regardless of the batch size.

use wp_sim::SweepRunner;

/// Scans `args` for `name` and returns the value token following it.
///
/// A flag's value must not itself be a flag (`--json --quick` is a
/// forgotten value, not a report named `--quick`): a present flag with a
/// missing or `--`-prefixed value exits with status 2, like the other
/// argument errors of the experiment binaries.  Returns `None` when the
/// flag is absent.
pub fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter().position(|a| a == name).map(|i| {
        match args.get(i + 1).filter(|v| !v.starts_with("--")) {
            Some(v) => v.clone(),
            None => {
                eprintln!("error: {name} expects a value");
                std::process::exit(2);
            }
        }
    })
}

/// Parsed `--workers` / `--batch` scheduler flags.
#[derive(Debug, Clone, Copy, Default)]
pub struct SweepArgs {
    /// Worker thread count (`0` = available parallelism).
    pub workers: usize,
    /// Steal-transfer batch size (`0` = auto heuristic).
    pub batch: usize,
}

impl SweepArgs {
    /// Parses the scheduler flags out of the process arguments, ignoring
    /// any flags it does not know.
    ///
    /// Exits with status 2 on a malformed or missing value (a flag followed
    /// by another `--flag` counts as missing), like the other argument
    /// errors of the experiment binaries.
    pub fn from_env() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        Self::from_args(&args)
    }

    /// [`SweepArgs::from_env`] over an explicit argument list.
    pub fn from_args(args: &[String]) -> Self {
        let parse = |name: &str| -> usize {
            flag_value(args, name).map_or(0, |v| {
                v.parse().unwrap_or_else(|_| {
                    eprintln!("error: {name} expects a non-negative integer, got '{v}'");
                    std::process::exit(2);
                })
            })
        };
        Self {
            workers: parse("--workers"),
            batch: parse("--batch"),
        }
    }

    /// Builds the configured [`SweepRunner`].
    pub fn runner(&self) -> SweepRunner {
        SweepRunner::new(self.workers).with_batch(self.batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn defaults_to_auto_everything() {
        let args = SweepArgs::from_args(&strings(&["--quick"]));
        assert_eq!(args.workers, 0);
        assert_eq!(args.batch, 0);
        assert!(args.runner().workers() >= 1);
        assert_eq!(args.runner().batch(), 0);
    }

    #[test]
    fn parses_both_flags_anywhere() {
        let args = SweepArgs::from_args(&strings(&[
            "--batch",
            "3",
            "--program",
            "sort",
            "--workers",
            "2",
        ]));
        assert_eq!(args.workers, 2);
        assert_eq!(args.batch, 3);
        let runner = args.runner();
        assert_eq!(runner.workers(), 2);
        assert_eq!(runner.batch(), 3);
    }

    #[test]
    fn absent_flags_return_none() {
        assert_eq!(flag_value(&strings(&["--quick"]), "--json"), None);
        assert_eq!(
            flag_value(&strings(&["--json", "out.json"]), "--json").as_deref(),
            Some("out.json")
        );
    }
}
