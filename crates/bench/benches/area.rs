//! Criterion benchmark for the area model (the overhead sweep of Section 1).

use criterion::{criterion_group, criterion_main, Criterion};
use wp_area::{case_study_overhead_sweep, relay_station_gates, CellLibrary};

fn bench_area(c: &mut Criterion) {
    let lib = CellLibrary::default();
    c.bench_function("area/case_study_sweep", |b| {
        b.iter(|| case_study_overhead_sweep(&lib))
    });
    c.bench_function("area/relay_station_64b", |b| {
        b.iter(|| relay_station_gates(&lib, 64))
    });
}

criterion_group!(benches, bench_area);
criterion_main!(benches);
