//! The wire-pipelined (latency-insensitive) simulator.
//!
//! Every process is enclosed in a [`Shell`] (WP1 or WP2 flavour) and every
//! channel is realised as a [`RelayChain`] of the requested length.  The
//! simulator performs a two-phase clocked update: it first samples every wire
//! from the registered outputs of shells and relay stations, then updates
//! every component with the sampled values.  No combinational feedback path
//! exists because both data validity and back-pressure are registered.
//!
//! # The allocation-free kernel
//!
//! [`LidSimulator::step`] is the hottest loop of the whole workspace (every
//! experiment of the paper is some number of `step()` calls), so it is
//! written to perform **zero heap allocations in steady state**:
//!
//! * the per-cycle wire samples live in a persistent [`WireArena`] built
//!   once at construction time (flat slabs + precomputed port offsets)
//!   instead of per-cycle nested `Vec`s;
//! * wires are sampled through `output_ref` borrows; a token is cloned only
//!   where it genuinely fans out (into a relay station, an input queue or a
//!   recorded trace);
//! * the per-cycle fired count is returned by the shell update phase and
//!   folded into one monotonic counter, instead of re-scanning every shell's
//!   firing counter twice per cycle (and twice more per `drain` cycle).
//!
//! The seed implementation survives as [`crate::NaiveSimulator`]: the
//! kernel-equivalence property tests assert cycle-identical behaviour and
//! the criterion benches measure the speedup against it.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::Hasher;

use wp_core::{
    ChannelTrace, Process, RelayChain, Shell, ShellConfig, ShellStats, SyncPolicy, TraceArena,
};

use crate::arena::WireArena;
use crate::lane::StallSchedule;
use crate::oracle::{
    goal_offset, max_cyclic_gap, split_remaining, OracleRun, ORACLE_DETECTION_WINDOW,
};
use crate::spec::{ChannelSpec, ProcessId, SimError, SystemBuilder};

/// How many consecutive cycles without a single firing are tolerated before
/// the simulator declares a deadlock.
pub const DEFAULT_DEADLOCK_WINDOW: u64 = 10_000;

/// Summary of one wire-pipelined run.
#[derive(Debug, Clone, PartialEq)]
pub struct LidReport {
    /// Total simulated cycles.
    pub cycles: u64,
    /// Firings of every process, indexed by [`ProcessId`].
    pub firings: Vec<u64>,
    /// Total firings across all processes (the kernel's monotonic counter;
    /// always equal to the sum of `firings`).
    pub total_firings: u64,
    /// Stale tokens discarded by every shell (WP2 only), indexed by process.
    pub discarded: Vec<u64>,
    /// Throughput (firings / cycles) of every process.
    pub throughput: Vec<f64>,
}

impl LidReport {
    /// Throughput of a specific process.
    pub fn throughput_of(&self, id: ProcessId) -> f64 {
        self.throughput[id]
    }
}

/// The latency-insensitive simulator.
pub struct LidSimulator<V> {
    shells: Vec<Shell<V>>,
    channels: Vec<ChannelSpec>,
    chains: Vec<RelayChain<V>>,
    /// Arena-backed channel recordings: one shared payload slab plus
    /// per-channel `(cycle, slot)` index lists (see [`TraceArena`]).
    traces: TraceArena<V>,
    /// Persistent per-cycle wire state (see the module docs): allocated once
    /// in [`LidSimulator::new`], reused by every [`LidSimulator::step`].
    arena: WireArena<V>,
    trace_enabled: bool,
    cycles: u64,
    /// Monotonic system-wide firing counter, incremented by the per-cycle
    /// fired count returned from the shell update phase.
    total_firings: u64,
    cycles_since_firing: u64,
    deadlock_window: u64,
    /// Deterministic firing gate installed by
    /// [`LidSimulator::set_stall_schedule`] (none by default).
    stall: Option<StallSchedule>,
}

impl<V> std::fmt::Debug for LidSimulator<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LidSimulator")
            .field("shells", &self.shells.len())
            .field("channels", &self.channels.len())
            .field("cycles", &self.cycles)
            .finish()
    }
}

impl<V: Clone + PartialEq> LidSimulator<V> {
    /// Builds the wire-pipelined simulator: every process is wrapped in a
    /// shell configured by `config` and every channel receives its requested
    /// relay stations.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidSystem`] when the description is not fully
    /// and consistently connected.
    pub fn new(builder: SystemBuilder<V>, config: ShellConfig) -> Result<Self, SimError> {
        builder.validate()?;
        let (processes, channels) = builder.into_parts();
        let shells: Vec<Shell<V>> = processes
            .into_iter()
            .map(|p| Shell::new(p, config))
            .collect();
        let chains = channels
            .iter()
            .map(|c| RelayChain::new(c.relay_stations))
            .collect();
        let traces = TraceArena::new(channels.iter().map(|c| c.name.clone()));
        let arena = WireArena::new(shells.iter().map(|s| (s.num_inputs(), s.num_outputs())));
        Ok(Self {
            shells,
            channels,
            chains,
            traces,
            arena,
            trace_enabled: true,
            cycles: 0,
            total_firings: 0,
            cycles_since_firing: 0,
            deadlock_window: DEFAULT_DEADLOCK_WINDOW,
            stall: None,
        })
    }

    /// Installs (or removes) a deterministic stall schedule: a firing gate
    /// that withholds otherwise possible firings on scheduled
    /// (process, cycle) pairs.  Gating is protocol-safe — to its neighbours a
    /// gated shell is indistinguishable from a slower block — and is how the
    /// scalar kernel reproduces exactly the perturbation one lane of the
    /// bit-parallel [`crate::LaneLidSimulator`] experiences, so the two can
    /// be compared bit for bit.
    pub fn set_stall_schedule(&mut self, schedule: Option<StallSchedule>) {
        self.stall = schedule;
    }

    /// Enables or disables channel-trace recording (enabled by default).
    pub fn set_trace_enabled(&mut self, enabled: bool) {
        self.trace_enabled = enabled;
    }

    /// Changes the deadlock-detection window (consecutive firing-free cycles).
    pub fn set_deadlock_window(&mut self, cycles: u64) {
        self.deadlock_window = cycles;
    }

    /// Number of cycles simulated so far.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Number of firings performed by a process so far.
    pub fn firings(&self, id: ProcessId) -> u64 {
        self.shells[id].firings()
    }

    /// Total firings across all processes so far (the kernel's monotonic
    /// counter; always equal to the sum of the per-shell counters).
    pub fn total_firings(&self) -> u64 {
        self.total_firings
    }

    /// Immutable access to the shell of a process (statistics, stall cause).
    pub fn shell(&self, id: ProcessId) -> &Shell<V> {
        &self.shells[id]
    }

    /// Immutable access to the enclosed process.
    pub fn process(&self, id: ProcessId) -> &dyn Process<V> {
        self.shells[id].process()
    }

    /// Shell statistics of a process.
    pub fn shell_stats(&self, id: ProcessId) -> &ShellStats {
        self.shells[id].stats()
    }

    /// Returns `true` when the given process reports a halted state.
    pub fn is_halted(&self, id: ProcessId) -> bool {
        self.shells[id].is_halted()
    }

    /// Simulates one clock cycle.
    ///
    /// Performs no heap allocation in steady state: the wire samples live
    /// in the persistent [`WireArena`] and all component updates operate on
    /// borrowed slices and slots of it (see the module docs).  With traces
    /// enabled — the default — each accepted token is additionally cloned
    /// into the [`TraceArena`], which itself records allocation-free once
    /// capacity is reserved ([`LidSimulator::reserve_traces`]).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Protocol`] if a latency-insensitive protocol
    /// violation is detected (this indicates a bug in the system assembly,
    /// not a data-dependent condition).
    pub fn step(&mut self) -> Result<(), SimError> {
        let cycle = self.cycles;
        let Self {
            shells,
            channels,
            chains,
            traces,
            arena,
            trace_enabled,
            stall,
            ..
        } = self;

        // Phase 1: per channel, sample the wires from the registered outputs
        // into the arena, then update the chain in place.  Validation
        // guarantees every (shell, port) slot is written by exactly one
        // channel, so the arena needs no clearing.  Updating each chain
        // right after it is sampled is safe because a chain is only ever
        // read through its own channel, and the shells (whose registered
        // outputs the chains consume) are not updated until phase 2.
        for (idx, ch) in channels.iter().enumerate() {
            let prod_token = shells[ch.src].output_ref(ch.src_port);
            let cons_stop = shells[ch.dst].stop_out(ch.dst_port);
            let delivered = chains[idx].output_ref(prod_token);
            let upstream_stop = chains[idx].stop_out(cons_stop);

            if *trace_enabled {
                match delivered.as_valid() {
                    Some(v) if !cons_stop => traces.record_valid(idx, v.clone()),
                    _ => traces.record_void(idx),
                }
            }

            arena.set_input(ch.dst, ch.dst_port, delivered.clone());
            arena.set_out_stop(ch.src, ch.src_port, upstream_stop);
            chains[idx].update(prod_token, cons_stop)?;
        }

        // Phase 2: update every shell from its arena slices.  The shells
        // report whether they fired, so one add per shell replaces the four
        // O(n_shells) firing scans of the seed step/drain loops.
        let mut fired_this_cycle = 0u64;
        for (i, shell) in shells.iter_mut().enumerate() {
            let allow = match stall {
                Some(schedule) => !schedule.stalled(i, cycle),
                None => true,
            };
            let fired = shell.update_gated(arena.inputs_of(i), arena.out_stops_of(i), allow)?;
            fired_this_cycle += u64::from(fired);
        }

        self.cycles += 1;
        self.total_firings += fired_this_cycle;
        if fired_this_cycle > 0 {
            self.cycles_since_firing = 0;
        } else {
            self.cycles_since_firing += 1;
        }
        Ok(())
    }

    /// Runs until the process `halt_on` reports a halted state, a deadlock is
    /// detected, or the cycle limit is reached.  Returns the number of cycles
    /// executed.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::MaxCyclesExceeded`], [`SimError::Deadlock`] or a
    /// protocol violation.
    pub fn run_until_halt(&mut self, halt_on: ProcessId, max_cycles: u64) -> Result<u64, SimError> {
        while !self.shells[halt_on].is_halted() {
            if self.cycles >= max_cycles {
                return Err(SimError::MaxCyclesExceeded { max_cycles });
            }
            if self.cycles_since_firing >= self.deadlock_window {
                return Err(SimError::Deadlock { cycle: self.cycles });
            }
            self.step()?;
        }
        Ok(self.cycles)
    }

    /// Runs until the process `node` has fired at least `target` times (or an
    /// error condition occurs) and returns the number of cycles executed.
    ///
    /// # Errors
    ///
    /// Same conditions as [`LidSimulator::run_until_halt`].
    pub fn run_until_firings(
        &mut self,
        node: ProcessId,
        target: u64,
        max_cycles: u64,
    ) -> Result<u64, SimError> {
        while self.shells[node].firings() < target {
            if self.cycles >= max_cycles {
                return Err(SimError::MaxCyclesExceeded { max_cycles });
            }
            if self.cycles_since_firing >= self.deadlock_window {
                return Err(SimError::Deadlock { cycle: self.cycles });
            }
            self.step()?;
        }
        Ok(self.cycles)
    }

    /// Runs for exactly `cycles` additional cycles.
    ///
    /// # Errors
    ///
    /// Returns a protocol violation if one occurs.
    pub fn run_for(&mut self, cycles: u64) -> Result<(), SimError> {
        for _ in 0..cycles {
            self.step()?;
        }
        Ok(())
    }

    /// Lets in-flight computations drain: keeps stepping until no shell has
    /// fired for `idle_cycles` consecutive cycles (or `max_extra` cycles have
    /// elapsed), and returns the number of extra cycles simulated.
    ///
    /// Unlike the golden system — where every block fires in the same cycle —
    /// a wire-pipelined system can still have tokens travelling through relay
    /// stations when the block that signals completion halts (e.g. a store
    /// still on its way to the data memory).  Call this after
    /// [`LidSimulator::run_until_halt`] before inspecting architectural
    /// state.
    ///
    /// # Errors
    ///
    /// Returns a protocol violation if one occurs while draining.
    pub fn drain(&mut self, idle_cycles: u64, max_extra: u64) -> Result<u64, SimError> {
        let mut extra = 0;
        let mut idle = 0;
        while idle < idle_cycles && extra < max_extra {
            let before = self.total_firings;
            self.step()?;
            extra += 1;
            if self.total_firings > before {
                idle = 0;
            } else {
                idle += 1;
            }
        }
        Ok(extra)
    }

    /// Builds a summary report of the run so far.
    pub fn report(&self) -> LidReport {
        let firings: Vec<u64> = self.shells.iter().map(Shell::firings).collect();
        debug_assert_eq!(
            firings.iter().sum::<u64>(),
            self.total_firings,
            "the kernel's monotonic firing counter drifted from the shell stats"
        );
        let discarded: Vec<u64> = self
            .shells
            .iter()
            .map(|s| s.stats().total_discarded())
            .collect();
        let throughput = firings
            .iter()
            .map(|&f| {
                if self.cycles == 0 {
                    0.0
                } else {
                    f as f64 / self.cycles as f64
                }
            })
            .collect();
        LidReport {
            cycles: self.cycles,
            firings,
            total_firings: self.total_firings,
            discarded,
            throughput,
        }
    }
}

/// Verdict of one period-verification pass (see
/// [`LidSimulator::run_until_firings_extrapolated`]).
enum PeriodVerdict {
    /// The goal was reached while verifying; the run is already complete.
    Goal,
    /// The candidate period held: the control state after one more full
    /// period is identical.  Carries the per-cycle cumulative firing
    /// pattern (`pattern[t * n + p]` = firings of process `p` in the first
    /// `t + 1` cycles of the period) and the per-cycle any-firing flags.
    Verified {
        /// Flattened cumulative per-process firing pattern.
        pattern: Vec<u64>,
        /// Whether any process fired in each cycle of the period.
        fired: Vec<bool>,
    },
    /// The control state did not come back: a hash collision or a
    /// transient that has not settled yet.
    NotPeriodic,
}

/// The steady-state period oracle (see the `oracle` module docs for the
/// soundness argument).
impl<V: Clone + PartialEq> LidSimulator<V> {
    /// Fills `out` with the complete control-plane state of the system:
    /// every shell's queue occupancies, stop bits, output validity bits and
    /// halted flag, then every relay station's register bits, in fixed
    /// order.  Two runs with equal control vectors have identical control
    /// futures under the strict policy.
    fn control_vec(&self, out: &mut Vec<u64>) {
        out.clear();
        for shell in &self.shells {
            shell.control_state(out);
        }
        for chain in &self.chains {
            chain.control_state(out);
        }
    }

    /// Hash of [`LidSimulator::control_vec`] (`scratch` is reused to keep
    /// the per-cycle detection cost allocation-free).
    fn control_hash(&self, scratch: &mut Vec<u64>) -> u64 {
        self.control_vec(scratch);
        let mut h = DefaultHasher::new();
        for &w in scratch.iter() {
            h.write_u64(w);
        }
        h.finish()
    }

    /// Runs until process `node` has fired `target` times, like
    /// [`LidSimulator::run_until_firings`], but detects the steady-state
    /// period of the control plane and *extrapolates* the goal cycle and
    /// every per-process firing counter in O(1) instead of simulating the
    /// whole steady state.
    ///
    /// The returned [`OracleRun`] always describes the run at the goal
    /// cycle.  Extrapolation happens only when it is provably sound: every
    /// shell uses [`SyncPolicy::Strict`], no stall schedule is installed,
    /// trace recording is off, and a candidate period (found by hashing the
    /// control state each cycle) survives verification — one more full
    /// period is simulated and the complete control vectors are compared,
    /// so hash collisions cannot produce a wrong answer.  In every other
    /// case the call falls back to plain simulation and returns the same
    /// numbers [`LidSimulator::run_until_firings`] would have produced.
    ///
    /// After an extrapolated run the simulator's architectural state is
    /// frozen at the last simulated cycle: do not drain it or read process
    /// state from it — everything the run established is in the returned
    /// value.
    ///
    /// # Errors
    ///
    /// Exactly the conditions of [`LidSimulator::run_until_firings`], with
    /// exact error parity: this method returns
    /// [`SimError::MaxCyclesExceeded`] or [`SimError::Deadlock`] precisely
    /// when the plain run would (an extrapolated goal cycle beyond
    /// `max_cycles` is reported as the error, and a steady state whose
    /// internal firing gaps reach the deadlock window falls back to plain
    /// simulation so the deadlock is reported at the right cycle).
    pub fn run_until_firings_extrapolated(
        &mut self,
        node: ProcessId,
        target: u64,
        max_cycles: u64,
    ) -> Result<OracleRun, SimError> {
        let start = self.cycles;
        let eligible = !self.trace_enabled
            && self.stall.is_none()
            && self
                .shells
                .iter()
                .all(|s| s.config().policy == SyncPolicy::Strict);
        if !eligible {
            return self.finish_plain(node, target, max_cycles, start);
        }

        let mut seen: HashMap<u64, u64> = HashMap::new();
        let mut scratch: Vec<u64> = Vec::new();
        let deadline = start.saturating_add(ORACLE_DETECTION_WINDOW);
        loop {
            if self.shells[node].firings() >= target {
                return Ok(self.plain_outcome(start));
            }
            if self.cycles >= max_cycles {
                return Err(SimError::MaxCyclesExceeded { max_cycles });
            }
            if self.cycles_since_firing >= self.deadlock_window {
                return Err(SimError::Deadlock { cycle: self.cycles });
            }
            if self.cycles >= deadline {
                return self.finish_plain(node, target, max_cycles, start);
            }
            let hash = self.control_hash(&mut scratch);
            if let Some(&first) = seen.get(&hash) {
                let period = self.cycles - first;
                match self.verify_period(node, target, max_cycles, period)? {
                    PeriodVerdict::Goal => return Ok(self.plain_outcome(start)),
                    PeriodVerdict::Verified { pattern, fired } => {
                        return self.extrapolate(
                            node, target, max_cycles, start, period, &pattern, &fired,
                        );
                    }
                    PeriodVerdict::NotPeriodic => {
                        seen.clear();
                        continue;
                    }
                }
            }
            seen.insert(hash, self.cycles);
            self.step()?;
        }
    }

    /// Simulates one full candidate period with the usual goal / limit /
    /// deadlock checks, recording the cumulative firing pattern, and
    /// compares the complete control vectors before and after.
    fn verify_period(
        &mut self,
        node: ProcessId,
        target: u64,
        max_cycles: u64,
        period: u64,
    ) -> Result<PeriodVerdict, SimError> {
        let n = self.shells.len();
        let mut snapshot = Vec::new();
        self.control_vec(&mut snapshot);
        let base: Vec<u64> = self.shells.iter().map(Shell::firings).collect();
        let mut pattern = vec![0u64; period as usize * n];
        let mut fired = vec![false; period as usize];
        let mut prev_total = self.total_firings;

        for t in 0..period as usize {
            if self.shells[node].firings() >= target {
                return Ok(PeriodVerdict::Goal);
            }
            if self.cycles >= max_cycles {
                return Err(SimError::MaxCyclesExceeded { max_cycles });
            }
            if self.cycles_since_firing >= self.deadlock_window {
                return Err(SimError::Deadlock { cycle: self.cycles });
            }
            self.step()?;
            for (p, shell) in self.shells.iter().enumerate() {
                pattern[t * n + p] = shell.firings() - base[p];
            }
            fired[t] = self.total_firings > prev_total;
            prev_total = self.total_firings;
        }
        if self.shells[node].firings() >= target {
            return Ok(PeriodVerdict::Goal);
        }

        let mut now = Vec::new();
        self.control_vec(&mut now);
        if now != snapshot {
            return Ok(PeriodVerdict::NotPeriodic);
        }
        Ok(PeriodVerdict::Verified { pattern, fired })
    }

    /// Computes the goal cycle and the per-process firing counters from a
    /// verified period, without simulating further.
    #[allow(clippy::too_many_arguments)]
    fn extrapolate(
        &mut self,
        node: ProcessId,
        target: u64,
        max_cycles: u64,
        start: u64,
        period: u64,
        pattern: &[u64],
        fired: &[bool],
    ) -> Result<OracleRun, SimError> {
        let n = self.shells.len();
        let last = (period as usize - 1) * n;
        let delta_node = pattern[last + node];
        // A steady state in which the goal process never fires can only end
        // in an error; one whose firing-free gaps reach the deadlock window
        // would make the plain run report a deadlock mid-extrapolation.
        // Both cases are handed back to plain simulation, which produces
        // the identical error at the identical cycle.
        if delta_node == 0 || max_cyclic_gap(fired) >= self.deadlock_window {
            return self.finish_plain(node, target, max_cycles, start);
        }

        let rem = target - self.shells[node].firings();
        let (k, residue) = split_remaining(rem, delta_node);
        let node_pattern: Vec<u64> = (0..period as usize)
            .map(|t| pattern[t * n + node])
            .collect();
        let t = goal_offset(&node_pattern, residue) as u64;
        let goal_cycle = self.cycles + k * period + t + 1;
        if goal_cycle > max_cycles {
            return Err(SimError::MaxCyclesExceeded { max_cycles });
        }

        let firings: Vec<u64> = self
            .shells
            .iter()
            .enumerate()
            .map(|(p, shell)| shell.firings() + k * pattern[last + p] + pattern[t as usize * n + p])
            .collect();
        let total_firings = firings.iter().sum();
        let discarded: Vec<u64> = self
            .shells
            .iter()
            .map(|s| s.stats().total_discarded())
            .collect();
        let throughput = firings
            .iter()
            .map(|&f| f as f64 / goal_cycle as f64)
            .collect();
        Ok(OracleRun {
            report: LidReport {
                cycles: goal_cycle,
                firings,
                total_firings,
                discarded,
                throughput,
            },
            simulated_cycles: self.cycles - start,
            extrapolated: true,
        })
    }

    /// Completes the run by plain simulation (the always-sound fallback).
    fn finish_plain(
        &mut self,
        node: ProcessId,
        target: u64,
        max_cycles: u64,
        start: u64,
    ) -> Result<OracleRun, SimError> {
        self.run_until_firings(node, target, max_cycles)?;
        Ok(self.plain_outcome(start))
    }

    /// Wraps the current (fully simulated) state as an [`OracleRun`].
    fn plain_outcome(&self, start: u64) -> OracleRun {
        OracleRun {
            report: self.report(),
            simulated_cycles: self.cycles - start,
            extrapolated: false,
        }
    }
}

crate::simulator::impl_trace_arena_accessors!(LidSimulator);

impl<V: Clone + PartialEq> crate::Simulator<V> for LidSimulator<V> {
    fn step(&mut self) -> Result<(), SimError> {
        LidSimulator::step(self)
    }
    fn cycles(&self) -> u64 {
        self.cycles
    }
    fn is_halted(&self, id: ProcessId) -> bool {
        self.shells[id].is_halted()
    }
    fn process(&self, id: ProcessId) -> &dyn Process<V> {
        self.shells[id].process()
    }
    fn set_trace_enabled(&mut self, enabled: bool) {
        self.trace_enabled = enabled;
    }
    fn channel_traces(&self) -> Vec<ChannelTrace<V>> {
        self.traces.to_channel_traces()
    }
    fn halt_guard(&self) -> Option<SimError> {
        (self.cycles_since_firing >= self.deadlock_window)
            .then_some(SimError::Deadlock { cycle: self.cycles })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::golden::GoldenSimulator;
    use crate::testutil::{Forward, RingStage, Terminator};
    use wp_core::{check_equivalence, SequenceSource, SyncPolicy};

    fn ring_builder(
        stages: usize,
        rs_on_first_edge: usize,
        skip_period: Option<u64>,
    ) -> SystemBuilder<u64> {
        let mut b = SystemBuilder::new();
        let ids: Vec<_> = (0..stages)
            .map(|i| {
                let stage = if i == 0 {
                    match skip_period {
                        Some(p) => RingStage::new(&format!("s{i}")).with_skip_period(p),
                        None => RingStage::new(&format!("s{i}")),
                    }
                } else {
                    RingStage::new(&format!("s{i}"))
                };
                b.add_process(Box::new(stage))
            })
            .collect();
        for i in 0..stages {
            let rs = if i == 0 { rs_on_first_edge } else { 0 };
            b.connect(format!("e{i}"), ids[i], 0, ids[(i + 1) % stages], 0, rs);
        }
        b
    }

    #[test]
    fn zero_relay_stations_behave_like_golden() {
        // With no relay stations the wrapped system is cycle-identical to the
        // golden one: same number of cycles for the same number of firings.
        let mut golden = GoldenSimulator::new(ring_builder(3, 0, None)).unwrap();
        golden.run_for(30);

        let mut lid = LidSimulator::new(ring_builder(3, 0, None), ShellConfig::strict()).unwrap();
        lid.run_until_firings(0, 30, 1000).unwrap();
        assert_eq!(lid.cycles(), 30);

        let report = check_equivalence(golden.traces(), lid.traces());
        assert!(report.is_equivalent(), "{report}");
        assert!(report.proven_n() >= 29);
    }

    #[test]
    fn strict_ring_throughput_follows_the_loop_law() {
        // m processes, n relay stations on one edge: Th = m / (m + n).
        for (m, n) in [(2usize, 1usize), (2, 2), (3, 1), (4, 2)] {
            let mut lid =
                LidSimulator::new(ring_builder(m, n, None), ShellConfig::strict()).unwrap();
            let target = 300;
            lid.run_until_firings(0, target, 100_000).unwrap();
            let measured = target as f64 / lid.cycles() as f64;
            let expected = m as f64 / (m + n) as f64;
            assert!(
                (measured - expected).abs() < 0.02,
                "m={m} n={n}: measured {measured:.3} expected {expected:.3}"
            );
        }
    }

    #[test]
    fn oracle_recovers_throughput_on_rarely_used_loops() {
        // Stage 0 needs its loop input only every 4th firing: with one relay
        // station on the loop, WP1 is limited to 2/3 while WP2 approaches 1.
        let strict = {
            let mut sim =
                LidSimulator::new(ring_builder(2, 1, Some(4)), ShellConfig::strict()).unwrap();
            sim.run_until_firings(0, 400, 100_000).unwrap();
            400.0 / sim.cycles() as f64
        };
        let oracle = {
            let mut sim =
                LidSimulator::new(ring_builder(2, 1, Some(4)), ShellConfig::oracle()).unwrap();
            sim.run_until_firings(0, 400, 100_000).unwrap();
            400.0 / sim.cycles() as f64
        };
        assert!((strict - 2.0 / 3.0).abs() < 0.02, "strict {strict}");
        assert!(oracle > strict + 0.1, "oracle {oracle} vs strict {strict}");
    }

    #[test]
    fn oracle_and_strict_agree_with_golden_traces() {
        for policy in [SyncPolicy::Strict, SyncPolicy::Oracle] {
            let mut golden = GoldenSimulator::new(ring_builder(2, 0, Some(3))).unwrap();
            golden.run_for(40);
            let config = ShellConfig::for_policy(policy);
            let mut lid = LidSimulator::new(ring_builder(2, 1, Some(3)), config).unwrap();
            lid.run_until_firings(0, 40, 10_000).unwrap();
            let report = check_equivalence(golden.traces(), lid.traces());
            assert!(report.is_equivalent(), "{policy:?}: {report}");
            assert!(report.proven_n() >= 30);
        }
    }

    #[test]
    fn pipeline_with_relay_stations_delivers_all_values() {
        let mut b = SystemBuilder::new();
        let src = b.add_process(Box::new(SequenceSource::new("src", (1..=20).collect(), 0)));
        let fwd = b.add_process(Box::new(Forward::new("fwd")));
        let term = b.add_process(Box::new(Terminator::new("term")));
        b.connect("src_fwd", src, 0, fwd, 0, 3);
        b.connect("fwd_term", fwd, 0, term, 0, 2);
        let mut lid = LidSimulator::new(b, ShellConfig::strict()).unwrap();
        lid.run_until_firings(2, 21, 1000).unwrap();
        let received = lid.traces()[1].filtered();
        // The Forward resets to 0, then forwards 1..=20.
        assert_eq!(received[0], 0);
        assert_eq!(&received[1..21], (1..=20).collect::<Vec<u64>>().as_slice());
    }

    #[test]
    fn report_contains_throughput_and_discards() {
        let mut lid =
            LidSimulator::new(ring_builder(2, 1, Some(4)), ShellConfig::oracle()).unwrap();
        lid.run_until_firings(0, 100, 10_000).unwrap();
        let report = lid.report();
        assert_eq!(report.firings[0], 100);
        assert!(report.throughput_of(0) > 0.5);
        // The oracle discards the loop tokens it did not need.
        assert!(report.discarded[0] > 0);
    }

    #[test]
    fn deadlock_is_detected() {
        // A single process waiting on an input that never receives a token:
        // connect a Terminator-fed ring where the producer never fires because
        // its own input is missing (two Forwards with a 0-length chain would
        // fire; instead make a self-loop with one relay station and a strict
        // shell whose initial token is consumed once, after which the chain
        // empties... simplest: a Forward whose input comes from a halted
        // source).
        let mut b = SystemBuilder::new();
        let src = b.add_process(Box::new(SequenceSource::new("src", vec![], 0u64)));
        let fwd = b.add_process(Box::new(Forward::new("fwd")));
        let term = b.add_process(Box::new(Terminator::new("term")));
        b.connect("src_fwd", src, 0, fwd, 0, 0);
        b.connect("fwd_term", fwd, 0, term, 0, 0);
        let mut lid = LidSimulator::new(b, ShellConfig::strict()).unwrap();
        lid.set_deadlock_window(50);
        let err = lid.run_until_halt(2, 10_000).unwrap_err();
        assert!(matches!(err, SimError::Deadlock { .. }));
    }

    #[test]
    fn max_cycles_is_enforced() {
        let mut lid = LidSimulator::new(ring_builder(2, 0, None), ShellConfig::strict()).unwrap();
        let err = lid.run_until_halt(0, 25).unwrap_err();
        assert!(matches!(
            err,
            SimError::MaxCyclesExceeded { max_cycles: 25 }
        ));
    }

    #[test]
    fn extrapolated_run_matches_plain_simulation_exactly() {
        for (m, n) in [(1usize, 0usize), (1, 4), (2, 1), (3, 2), (5, 3)] {
            let target = 5_000;
            let mut plain =
                LidSimulator::new(ring_builder(m, n, None), ShellConfig::strict()).unwrap();
            plain.set_trace_enabled(false);
            plain.run_until_firings(0, target, 1_000_000).unwrap();
            let reference = plain.report();

            let mut sim =
                LidSimulator::new(ring_builder(m, n, None), ShellConfig::strict()).unwrap();
            sim.set_trace_enabled(false);
            let run = sim
                .run_until_firings_extrapolated(0, target, 1_000_000)
                .unwrap();
            assert!(run.extrapolated, "m={m} n={n}: period not found");
            assert_eq!(run.report, reference, "m={m} n={n}");
            assert!(
                run.simulated_cycles * 10 <= run.report.cycles,
                "m={m} n={n}: simulated {} of {} cycles",
                run.simulated_cycles,
                run.report.cycles
            );
            assert_eq!(
                run.extrapolated_cycles(),
                run.report.cycles - run.simulated_cycles
            );
        }
    }

    #[test]
    fn oracle_policy_and_trace_recording_fall_back_to_plain() {
        // WP2: `required_inputs` is data-dependent, so a repeated control
        // state proves nothing — the call must simulate everything.
        let mut sim =
            LidSimulator::new(ring_builder(2, 1, Some(4)), ShellConfig::oracle()).unwrap();
        sim.set_trace_enabled(false);
        let run = sim.run_until_firings_extrapolated(0, 400, 100_000).unwrap();
        assert!(!run.extrapolated);
        assert_eq!(run.report.firings[0], 400);
        assert_eq!(run.simulated_cycles, run.report.cycles);

        // Trace recording needs every cycle simulated, so it also falls
        // back — and the recording really covers the whole run.
        let mut sim = LidSimulator::new(ring_builder(2, 1, None), ShellConfig::strict()).unwrap();
        let run = sim.run_until_firings_extrapolated(0, 400, 100_000).unwrap();
        assert!(!run.extrapolated);
        assert_eq!(sim.traces()[0].len() as u64, run.report.cycles);
    }

    #[test]
    fn extrapolated_max_cycles_parity_is_exact() {
        // Find the true goal cycle by plain simulation, then check that the
        // oracle errs precisely when the plain run would have.
        let target = 2_000;
        let mut plain = LidSimulator::new(ring_builder(3, 2, None), ShellConfig::strict()).unwrap();
        plain.set_trace_enabled(false);
        let goal_cycle = plain.run_until_firings(0, target, 1_000_000).unwrap();

        let mut sim = LidSimulator::new(ring_builder(3, 2, None), ShellConfig::strict()).unwrap();
        sim.set_trace_enabled(false);
        let err = sim
            .run_until_firings_extrapolated(0, target, goal_cycle - 1)
            .unwrap_err();
        assert!(matches!(err, SimError::MaxCyclesExceeded { .. }));

        let mut sim = LidSimulator::new(ring_builder(3, 2, None), ShellConfig::strict()).unwrap();
        sim.set_trace_enabled(false);
        let run = sim
            .run_until_firings_extrapolated(0, target, goal_cycle)
            .unwrap();
        assert!(run.extrapolated);
        assert_eq!(run.report.cycles, goal_cycle);
    }
}

#[cfg(test)]
mod drain_tests {
    use super::*;
    use crate::spec::SystemBuilder;
    use crate::testutil::{Forward, Terminator};
    use wp_core::{SequenceSource, ShellConfig};

    /// A source feeding a long relay chain: when the source halts, tokens are
    /// still inside the chain and `drain` must flush them to the terminator.
    #[test]
    fn drain_flushes_in_flight_tokens() {
        let mut b = SystemBuilder::new();
        let src = b.add_process(Box::new(SequenceSource::new("src", vec![1u64, 2, 3], 0)));
        let fwd = b.add_process(Box::new(Forward::new("fwd")));
        let term = b.add_process(Box::new(Terminator::new("term")));
        b.connect("src_fwd", src, 0, fwd, 0, 4);
        b.connect("fwd_term", fwd, 0, term, 0, 4);
        let mut sim = LidSimulator::new(b, ShellConfig::strict()).unwrap();
        sim.run_until_halt(0, 1_000).unwrap();
        let before = sim.firings(2);
        let extra = sim.drain(16, 10_000).unwrap();
        assert!(extra > 0);
        assert!(
            sim.firings(2) > before,
            "terminator kept firing while draining"
        );
        // Draining again immediately is a no-op apart from the idle window.
        let extra2 = sim.drain(8, 10_000).unwrap();
        assert_eq!(extra2, 8);
    }

    #[test]
    fn drain_respects_the_extra_cycle_cap() {
        // A free-running ring never quiesces: the cap must stop the drain.
        let mut b = SystemBuilder::new();
        let f1 = b.add_process(Box::new(Forward::new("f1")));
        let f2 = b.add_process(Box::new(Forward::new("f2")));
        b.connect("a", f1, 0, f2, 0, 0);
        b.connect("b", f2, 0, f1, 0, 0);
        let mut sim = LidSimulator::new(b, ShellConfig::strict()).unwrap();
        let extra = sim.drain(4, 25).unwrap();
        assert_eq!(extra, 25);
    }
}
