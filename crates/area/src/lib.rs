//! # wp-area — gate-count area model for shells and relay stations
//!
//! *"A New System Design Methodology for Wire Pipelined SoC"*
//! (M. R. Casu, L. Macchiarulo, DATE 2005) evaluates the wrapper area "with
//! several synthesis experiments on a 130 nm technology" and reports, in
//! **Section 1**, that "the overhead was always less than 1% with respect
//! to an IP of 100 kgates".  This crate provides a structural gate-count
//! model of the wrapper components so that the overhead experiment can be
//! regenerated without a synthesis flow (the `area_overhead` binary of
//! `wp-bench`):
//!
//! * [`CellLibrary`] / [`Technology`] — NAND2-equivalent gate counts per
//!   flip-flop, multiplexer, comparator and counter bit (the usual
//!   first-order estimate in the wire-planning literature) and the 130 nm
//!   gate density the paper's experiments assume;
//! * [`shell_gates`] / [`relay_station_gates`] — structural counts for the
//!   **Section 3** wrapper (per-input bounded queues and lag counters, the
//!   firing synchroniser, the optional WP2 oracle port) and for the
//!   **Section 2** relay station (main + auxiliary registers plus
//!   back-pressure control);
//! * [`shell_overhead`] / [`case_study_overhead_sweep`] — the overhead
//!   experiment itself, against the paper's 100-kgate reference IP.
//!
//! ## Quick example
//!
//! The model reproduces the order of magnitude of the paper's headline
//! claim: the shells of the five-block case study cost on the order of 1%
//! of a 100-kgate IP (roughly 0.5–1.5% here depending on port count and
//! oracle, against the paper's synthesised "< 1%"):
//!
//! ```
//! use wp_area::{case_study_overhead_sweep, CellLibrary};
//!
//! let reports = case_study_overhead_sweep(&CellLibrary::default());
//! assert_eq!(reports.len(), 10); // five blocks × {WP1, WP2}
//! for report in &reports {
//!     assert!(
//!         report.overhead_percent > 0.0 && report.overhead_percent < 2.0,
//!         "{}: {:.2}%",
//!         report.label,
//!         report.overhead_percent
//!     );
//! }
//! let below_one = reports.iter().filter(|r| r.overhead_percent < 1.0).count();
//! assert!(below_one >= reports.len() / 2);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

/// NAND2-equivalent gate counts of the elementary cells used by the model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellLibrary {
    /// Gates per flip-flop bit.
    pub flip_flop: f64,
    /// Gates per 2-to-1 multiplexer bit.
    pub mux2: f64,
    /// Gates per bit of a small comparator / equality check.
    pub comparator_bit: f64,
    /// Gates per counter bit (flip-flop + increment logic).
    pub counter_bit: f64,
    /// Gates of miscellaneous control logic per FSM state.
    pub fsm_state: f64,
}

impl Default for CellLibrary {
    fn default() -> Self {
        // Typical standard-cell equivalences: a scan flip-flop is ~6 NAND2,
        // a mux ~3, a counter bit ~8 (flop + half-adder + carry), a
        // comparator bit ~2.5 and a handful of gates per control state.
        Self {
            flip_flop: 6.0,
            mux2: 3.0,
            comparator_bit: 2.5,
            counter_bit: 8.0,
            fsm_state: 12.0,
        }
    }
}

/// A technology point (only the parameters the overhead ratio needs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Technology {
    /// Feature size label in nanometres (informational).
    pub node_nm: u32,
    /// Area of one NAND2-equivalent gate in µm².
    pub gate_area_um2: f64,
}

impl Technology {
    /// The 130 nm node used in the paper's synthesis experiments.
    pub fn nm130() -> Self {
        Self {
            node_nm: 130,
            gate_area_um2: 5.0,
        }
    }

    /// Silicon area of a block of `gates` NAND2-equivalents, in mm².
    pub fn area_mm2(&self, gates: f64) -> f64 {
        gates * self.gate_area_um2 / 1.0e6
    }
}

/// Parameters of one shell (wrapper) instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShellParams {
    /// Number of input channels.
    pub inputs: usize,
    /// Number of output channels.
    pub outputs: usize,
    /// Payload width of each channel in bits.
    pub data_width: usize,
    /// Depth of each input queue.
    pub fifo_depth: usize,
    /// Whether the shell carries the oracle logic of WP2 (lag counters and
    /// stale-token discard).
    pub oracle: bool,
}

impl ShellParams {
    /// The wrapper configuration used around the paper's case-study blocks:
    /// narrow control/data channels (12 bits on average — flags, register
    /// indices and addresses are much narrower than the datapath) and the
    /// minimum queue depth of two entries.
    pub fn case_study(inputs: usize, outputs: usize) -> Self {
        Self {
            inputs,
            outputs,
            data_width: 12,
            fifo_depth: 2,
            oracle: true,
        }
    }
}

/// Gate-count estimates produced by the model.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct GateCount {
    /// NAND2-equivalent gates.
    pub gates: f64,
}

impl GateCount {
    /// Adds two estimates.
    pub fn plus(self, other: GateCount) -> GateCount {
        GateCount {
            gates: self.gates + other.gates,
        }
    }
}

/// Gate count of one relay station of the given payload width.
///
/// A relay station is two data registers, a 2-to-1 data multiplexer, one
/// validity/stop flip-flop pair and a tiny FSM.
pub fn relay_station_gates(lib: &CellLibrary, data_width: usize) -> GateCount {
    let w = data_width as f64;
    GateCount {
        gates: 2.0 * w * lib.flip_flop     // main + auxiliary registers
            + w * lib.mux2                 // output/bypass mux
            + 2.0 * lib.flip_flop          // valid + stop registers
            + 2.0 * lib.fsm_state, // relay-station FSM
    }
}

/// Gate count of one shell (wrapper).
///
/// Per input channel: a `fifo_depth × data_width` register queue with
/// read/write pointers, a lag counter (oracle only) and the stop register.
/// Per output channel: the output register with its validity bit.  Plus the
/// synchroniser FSM.
pub fn shell_gates(lib: &CellLibrary, params: &ShellParams) -> GateCount {
    let w = params.data_width as f64;
    let depth = params.fifo_depth as f64;
    let pointer_bits = (params.fifo_depth.max(2) as f64).log2().ceil();
    let per_input = depth * w * lib.flip_flop            // queue storage
        + 2.0 * pointer_bits * lib.counter_bit           // read/write pointers
        + w * lib.mux2                                    // head mux
        + lib.flip_flop                                   // stop register
        + if params.oracle {
            8.0 * lib.counter_bit + 8.0 * lib.comparator_bit // lag counter + old-tag compare
        } else {
            0.0
        };
    let per_output = (w + 1.0) * lib.flip_flop; // output register + valid
    let synchroniser = 4.0 * lib.fsm_state
        + (params.inputs as f64) * lib.comparator_bit * 4.0
        + if params.oracle {
            (params.inputs as f64) * lib.fsm_state // oracle port-select logic
        } else {
            0.0
        };
    GateCount {
        gates: (params.inputs as f64) * per_input
            + (params.outputs as f64) * per_output
            + synchroniser,
    }
}

/// Result of the overhead experiment for one block.
#[derive(Debug, Clone, PartialEq)]
pub struct OverheadReport {
    /// Description of the shell configuration.
    pub label: String,
    /// Wrapper gates (shell plus its share of relay stations, if requested).
    pub wrapper_gates: f64,
    /// IP block size the wrapper is compared against, in gates.
    pub ip_gates: f64,
    /// Overhead percentage (`wrapper / ip * 100`).
    pub overhead_percent: f64,
}

/// Computes the wrapper-area overhead for a shell configuration against an
/// IP block of `ip_kgates` thousand gates (the paper uses 100 kgates).
pub fn shell_overhead(
    lib: &CellLibrary,
    params: &ShellParams,
    ip_kgates: f64,
    label: impl Into<String>,
) -> OverheadReport {
    let wrapper = shell_gates(lib, params).gates;
    let ip_gates = ip_kgates * 1_000.0;
    OverheadReport {
        label: label.into(),
        wrapper_gates: wrapper,
        ip_gates,
        overhead_percent: 100.0 * wrapper / ip_gates,
    }
}

/// Sweeps shell configurations representative of the case study and returns
/// one overhead report per configuration, against a 100-kgate IP.
///
/// This regenerates the "< 1 %" claim of the paper's Section 1.
pub fn case_study_overhead_sweep(lib: &CellLibrary) -> Vec<OverheadReport> {
    let mut reports = Vec::new();
    for (name, inputs, outputs) in [
        ("CU shell", 2usize, 4usize),
        ("IC shell", 1, 1),
        ("RF shell", 3, 2),
        ("ALU shell", 2, 3),
        ("DC shell", 3, 1),
    ] {
        for oracle in [false, true] {
            let params = ShellParams {
                oracle,
                ..ShellParams::case_study(inputs, outputs)
            };
            let label = format!("{name} ({})", if oracle { "WP2" } else { "WP1" });
            reports.push(shell_overhead(lib, &params, 100.0, label));
        }
    }
    reports
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relay_station_is_a_few_hundred_gates() {
        let lib = CellLibrary::default();
        let rs = relay_station_gates(&lib, 32);
        assert!(rs.gates > 100.0 && rs.gates < 1_000.0, "{}", rs.gates);
        // Wider payloads cost proportionally more.
        let rs64 = relay_station_gates(&lib, 64);
        assert!(rs64.gates > 1.8 * rs.gates && rs64.gates < 2.2 * rs.gates);
    }

    #[test]
    fn oracle_shell_costs_more_than_strict_shell() {
        let lib = CellLibrary::default();
        let strict = shell_gates(
            &lib,
            &ShellParams {
                oracle: false,
                ..ShellParams::case_study(3, 2)
            },
        );
        let oracle = shell_gates(&lib, &ShellParams::case_study(3, 2));
        assert!(oracle.gates > strict.gates);
        // ... but only marginally (the queues dominate).
        assert!(oracle.gates < 1.4 * strict.gates);
    }

    #[test]
    fn case_study_overhead_is_of_the_order_of_one_percent() {
        // The paper reports "< 1 %" for its wrappers around a 100-kgate IP;
        // our structural model lands in the same order of magnitude
        // (roughly 0.5–1.5 % depending on the port count), which is the
        // property the experiment checks.
        let lib = CellLibrary::default();
        let reports = case_study_overhead_sweep(&lib);
        assert_eq!(reports.len(), 10);
        for r in &reports {
            assert!(
                r.overhead_percent < 2.0,
                "{}: {:.2}% is far above the paper's bound",
                r.label,
                r.overhead_percent
            );
            assert!(r.overhead_percent > 0.0);
        }
        let below_one = reports.iter().filter(|r| r.overhead_percent < 1.0).count();
        assert!(
            below_one >= reports.len() / 2,
            "at least half of the shells should stay below 1%"
        );
    }

    #[test]
    fn deeper_fifos_increase_the_overhead() {
        let lib = CellLibrary::default();
        let shallow = shell_gates(
            &lib,
            &ShellParams {
                fifo_depth: 2,
                ..ShellParams::case_study(3, 2)
            },
        );
        let deep = shell_gates(
            &lib,
            &ShellParams {
                fifo_depth: 16,
                ..ShellParams::case_study(3, 2)
            },
        );
        assert!(deep.gates > 2.0 * shallow.gates);
    }

    #[test]
    fn technology_area_conversion() {
        let tech = Technology::nm130();
        assert_eq!(tech.node_nm, 130);
        // 100 kgates at 5 µm²/gate = 0.5 mm².
        assert!((tech.area_mm2(100_000.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn gate_count_addition() {
        let a = GateCount { gates: 10.0 };
        let b = GateCount { gates: 5.0 };
        assert_eq!(a.plus(b).gates, 15.0);
    }

    #[test]
    fn overhead_report_fields_are_consistent() {
        let lib = CellLibrary::default();
        let r = shell_overhead(&lib, &ShellParams::case_study(2, 2), 100.0, "test");
        assert_eq!(r.ip_gates, 100_000.0);
        assert!((r.overhead_percent - 100.0 * r.wrapper_gates / r.ip_gates).abs() < 1e-9);
    }
}
