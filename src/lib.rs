//! # wire-pipelined-soc — umbrella crate
//!
//! Re-exports the public API of the workspace crates that reproduce
//! *"A New System Design Methodology for Wire Pipelined SoC"*
//! (Casu & Macchiarulo, DATE 2005):
//!
//! * [`lex`] (`wp_lex`) — shared tokenizer of the hand-rolled line-oriented
//!   text formats (hostfiles, netlist specs);
//! * [`core`] (`wp_core`) — latency-insensitive protocol: tokens, relay
//!   stations, WP1/WP2 shells, oracles, equivalence checking;
//! * [`netlist`] (`wp_netlist`) — netlist graph, loop enumeration and the
//!   `m/(m+n)` throughput law;
//! * [`sim`] (`wp_sim`) — golden and wire-pipelined cycle-accurate
//!   simulators;
//! * [`spec`] (`wp_spec`) — the netlist description language (`*.nl`):
//!   parser, canonical printer and registry-checked lowering to every
//!   executable view (see `docs/NETLIST_FORMAT.md`);
//! * [`generator`] (`wp_gen`) — seeded random strongly-connected netlist
//!   specs (named `generator` here because `gen` is a reserved identifier
//!   in newer Rust editions);
//! * [`dse`] (`wp_dse`) — design-space exploration: analytic Pareto search
//!   over relay-station assignments (area cost vs effective throughput);
//! * [`proc`] (`wp_proc`) — the five-block case-study processor, its ISA,
//!   assembler and benchmark programs;
//! * [`floorplan`] (`wp_floorplan`) — placement, wire delay and
//!   relay-station budgeting;
//! * [`area`] (`wp_area`) — wrapper area overhead model;
//! * [`dist`] (`wp_dist`) — process-level shard planner, NDJSON worker
//!   protocol and result merger for distributed sweeps.
//!
//! See the `examples/` directory for runnable entry points and the
//! `wp-bench` crate for the experiment harness that regenerates every table
//! and figure of the paper.

pub use wp_area as area;
pub use wp_core as core;
pub use wp_dist as dist;
pub use wp_dse as dse;
pub use wp_floorplan as floorplan;
pub use wp_gen as generator;
pub use wp_lex as lex;
pub use wp_netlist as netlist;
pub use wp_proc as proc;
pub use wp_sim as sim;
pub use wp_spec as spec;
