//! Process-level tests of the worker protocol: real children spawned via
//! `sh`, covering the happy path, the bounded retry, and every loud-failure
//! mode (killed child, missing rows, malformed records).

use std::process::Command;

use wp_dist::{run_sharded, DistError, Json, ShardPlan, ShardSpec};

/// A worker that prints the NDJSON records for its plan range, exactly as a
/// sharded experiment binary would.
fn echo_worker(shard: usize, plan: &ShardPlan) -> Command {
    let lines: String = plan
        .range(shard)
        .map(|i| format!("printf '{{\"index\": {i}, \"value\": {}}}\\n'\n", i * 10))
        .collect();
    let mut cmd = Command::new("sh");
    cmd.arg("-c").arg(lines);
    cmd
}

#[test]
fn merges_shard_outputs_in_submission_order() {
    for shards in [1usize, 2, 3, 7] {
        let plan = ShardPlan::split(7, shards);
        let merged = run_sharded(&plan, |s| echo_worker(s, &plan)).expect("all shards succeed");
        assert_eq!(merged.len(), 7, "shards = {shards}");
        for (i, record) in merged.iter().enumerate() {
            assert_eq!(record.get("index").unwrap().as_usize(), Some(i));
            assert_eq!(
                record.get("value").unwrap().as_u64(),
                Some(i as u64 * 10),
                "shards = {shards}"
            );
        }
    }
}

#[test]
fn more_shards_than_items_spawns_only_populated_shards() {
    let plan = ShardPlan::split(2, 6);
    let mut spawned = Vec::new();
    let merged = run_sharded(&plan, |s| {
        spawned.push(s);
        echo_worker(s, &plan)
    })
    .expect("succeeds");
    assert_eq!(merged.len(), 2);
    assert_eq!(spawned.len(), 2, "empty shards must not spawn workers");
}

#[test]
fn empty_plan_spawns_nothing() {
    let plan = ShardPlan::split(0, 4);
    let merged = run_sharded(&plan, |_| unreachable!("no shard is populated")).expect("succeeds");
    assert!(merged.is_empty());
}

#[test]
fn a_flaky_shard_is_retried_once_and_recovers() {
    // The worker for shard 1 fails on its first invocation (before creating
    // the marker file) and succeeds on the retry.
    let dir = std::env::temp_dir().join(format!("wp_dist_retry_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let marker = dir.join("attempted");
    let _ = std::fs::remove_file(&marker);

    let plan = ShardPlan::split(4, 2);
    let merged = run_sharded(&plan, |s| {
        if s == 1 {
            let mut cmd = Command::new("sh");
            cmd.arg("-c").arg(format!(
                "if [ -e '{m}' ]; then printf '{{\"index\": 2}}\\n{{\"index\": 3}}\\n'; \
                 else touch '{m}'; exit 1; fi",
                m = marker.display()
            ));
            cmd
        } else {
            echo_worker(s, &plan)
        }
    })
    .expect("the retry succeeds");
    assert_eq!(merged.len(), 4);
    assert!(marker.exists(), "the first attempt ran and failed");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_killed_child_surfaces_a_worker_error_after_the_retry() {
    let plan = ShardPlan::split(3, 3);
    let err = run_sharded(&plan, |s| {
        let mut cmd = Command::new("sh");
        if s == 1 {
            // Die by signal on every attempt.
            cmd.arg("-c").arg("kill -9 $$");
        } else {
            cmd.arg("-c").arg(format!("printf '{{\"index\": {s}}}\\n'"));
        }
        cmd
    })
    .expect_err("shard 1 never succeeds");
    match err {
        DistError::WorkerFailed { shard, .. } => assert_eq!(shard, 1),
        other => panic!("expected WorkerFailed, got {other}"),
    }
}

#[test]
fn a_shard_dropping_rows_fails_loudly() {
    let plan = ShardPlan::split(4, 2);
    let err = run_sharded(&plan, |s| {
        let mut cmd = Command::new("sh");
        // Shard 1 owns 2..4 but only reports index 2.
        let script = if s == 1 {
            "printf '{\"index\": 2}\\n'".to_string()
        } else {
            "printf '{\"index\": 0}\\n{\"index\": 1}\\n'".to_string()
        };
        cmd.arg("-c").arg(script);
        cmd
    })
    .expect_err("a dropped row must not merge");
    match err {
        DistError::WrongIndices {
            shard,
            expected,
            got,
        } => {
            assert_eq!(shard, 1);
            assert_eq!(expected, 2..4);
            assert_eq!(got, vec![2]);
        }
        other => panic!("expected WrongIndices, got {other}"),
    }
}

#[test]
fn a_shard_double_emitting_a_row_fails_loudly() {
    let plan = ShardPlan::split(2, 1);
    let err = run_sharded(&plan, |_| {
        let mut cmd = Command::new("sh");
        // Covers 0..2 but reports index 1 twice: the duplicate must not
        // silently last-write-win.
        cmd.arg("-c")
            .arg("printf '{\"index\": 0}\\n{\"index\": 1}\\n{\"index\": 1}\\n'");
        cmd
    })
    .expect_err("duplicate records must not merge");
    match err {
        DistError::WrongIndices { shard, got, .. } => {
            assert_eq!(shard, 0);
            assert_eq!(got, vec![0, 1, 1]);
        }
        other => panic!("expected WrongIndices, got {other}"),
    }
}

#[test]
fn a_shard_reporting_foreign_indices_fails_loudly() {
    let plan = ShardPlan::split(2, 2);
    let err = run_sharded(&plan, |s| {
        let mut cmd = Command::new("sh");
        // Both shards claim index 0.
        let _ = s;
        cmd.arg("-c").arg("printf '{\"index\": 0}\\n'");
        cmd
    })
    .expect_err("trespassing records must not merge");
    assert!(
        matches!(err, DistError::WrongIndices { shard: 1, .. }),
        "{err}"
    );
}

#[test]
fn malformed_worker_output_names_the_shard_and_line() {
    let plan = ShardPlan::split(2, 1);
    let err = run_sharded(&plan, |_| {
        let mut cmd = Command::new("sh");
        cmd.arg("-c")
            .arg("printf '{\"index\": 0}\\nnot json at all\\n'");
        cmd
    })
    .expect_err("malformed records must not merge");
    match &err {
        DistError::Malformed { shard, line, .. } => {
            assert_eq!(*shard, 0);
            assert_eq!(*line, 2);
        }
        other => panic!("expected Malformed, got {other}"),
    }
    assert!(err.to_string().contains("shard 0"), "{err}");
}

#[test]
fn an_unspawnable_worker_surfaces_a_spawn_error() {
    let plan = ShardPlan::split(1, 1);
    let err = run_sharded(&plan, |_| Command::new("/nonexistent/worker/binary"))
        .expect_err("spawn must fail");
    assert!(matches!(err, DistError::Spawn { shard: 0, .. }), "{err}");
}

/// Worker payloads survive the pipe byte-for-byte: awkward labels written
/// with RFC 8259 escaping parse back to the original strings.
#[test]
fn payload_strings_round_trip_through_a_real_pipe() {
    let plan = ShardPlan::split(1, 1);
    let merged = run_sharded(&plan, |_| {
        let mut cmd = Command::new("sh");
        cmd.arg("-c")
            .arg(r#"printf '{"index": 0, "label": "a\\"b\\\\c\\u0007d", "th": 0.75}\n'"#);
        cmd
    })
    .expect("succeeds");
    assert_eq!(
        merged[0].get("label").unwrap().as_str(),
        Some("a\"b\\c\u{7}d")
    );
    assert_eq!(merged[0].get("th").unwrap().as_f64(), Some(0.75));
    // And the record re-serialises to parseable JSON.
    let reparsed = Json::parse(&merged[0].to_string()).unwrap();
    assert_eq!(&reparsed, &merged[0]);
}

#[test]
fn shard_spec_and_plan_agree_on_worker_ranges() {
    // A worker parsing `--shard 2/5` must own exactly the range the parent
    // planned for shard 2.
    let plan = ShardPlan::split(13, 5);
    for s in 0..5 {
        let spec = ShardSpec::parse(&format!("{s}/5")).unwrap();
        assert_eq!(spec.range(13), plan.range(s));
    }
}
