//! The full "wire pipelined SoC" methodology, end to end:
//!
//! 1. describe the five blocks physically and place them with the
//!    throughput-aware annealer;
//! 2. derive the relay-station budget of every link from the wire delays;
//! 3. predict the WP1 throughput with the loop law;
//! 4. simulate both WP1 and WP2 implementations of the sort workload and
//!    compare with the prediction.
//!
//! Run with `cargo run --example floorplan_flow --release`.

use wp_core::SyncPolicy;
use wp_floorplan::{anneal, AnnealConfig, Block, Floorplan, WireModel};
use wp_netlist::ThroughputModel;
use wp_proc::{
    build_soc, extraction_sort, run_golden_soc, run_wp_soc, Link, Organization, RsConfig,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const MAX_CYCLES: u64 = 5_000_000;
    let workload = extraction_sort(16, 42)?;
    let organization = Organization::Pipelined;

    // Physical view of the SoC: block sizes in mm on a 14x14 mm die, 1 ns
    // clock (a deliberately wire-dominated design point).
    let mut fp = Floorplan::new(14.0, 14.0);
    for (name, w, h) in [
        ("CU", 2.0, 2.0),
        ("IC", 5.0, 5.0),
        ("RF", 2.0, 3.0),
        ("ALU", 3.0, 3.0),
        ("DC", 5.0, 5.0),
    ] {
        fp.add_block(Block::new(name, w, h));
    }
    let model = WireModel::nm130(1.0);
    let net = build_soc(&workload, organization, &RsConfig::ideal()).to_netlist();

    let result = anneal(&fp, &net, &model, &AnnealConfig::default());
    println!("placement after annealing:");
    for (i, block) in fp.blocks().iter().enumerate() {
        let (x, y) = result.placement.position(i);
        println!("  {:<4} at ({x:5.2}, {y:5.2}) mm", block.name());
    }
    println!(
        "total wire length {:.1} mm, predicted WP1 throughput {:.3}\n",
        result.wire_length, result.predicted_throughput
    );

    // Translate the per-channel budget into the per-link configuration used
    // by the processor experiments (a link takes the worst of its wires).
    let budget = fp.relay_station_budget(&net, &result.placement, &model);
    let mut rs = RsConfig::ideal();
    for link in Link::ALL {
        let needed = link
            .channel_names()
            .iter()
            .filter_map(|name| net.find_edge(name))
            .map(|e| budget[e.index()])
            .max()
            .unwrap_or(0);
        rs.set(link, needed);
    }
    println!("relay-station budget per link:");
    for link in Link::ALL {
        println!("  {:<8} {}", link.label(), rs.get(link));
    }

    let law = ThroughputModel::Exact.predict(&build_soc(&workload, organization, &rs).to_netlist());
    let golden = run_golden_soc(&workload, organization, MAX_CYCLES)?;
    let wp1 = run_wp_soc(&workload, organization, &rs, SyncPolicy::Strict, MAX_CYCLES)?;
    let wp2 = run_wp_soc(&workload, organization, &rs, SyncPolicy::Oracle, MAX_CYCLES)?;
    println!("\ngolden cycles {}", golden.cycles);
    println!(
        "WP1: {} cycles, Th {:.3} (loop law predicts {law:.3})",
        wp1.cycles,
        wp1.throughput_vs(golden.cycles)
    );
    println!(
        "WP2: {} cycles, Th {:.3}",
        wp2.cycles,
        wp2.throughput_vs(golden.cycles)
    );
    assert!(workload.check(&wp1.memory[..workload.expected_memory.len()]));
    assert!(workload.check(&wp2.memory[..workload.expected_memory.len()]));
    Ok(())
}
