//! The lane-packed bit-parallel simulation kernel.
//!
//! Every Table-1 / Figure-1 experiment evaluates the *same netlist* under
//! many independent perturbations (stall schedules, relay-station budgets).
//! The hot state of such a run is almost entirely single bits — channel
//! validity, stop/back-pressure wires, relay-station occupancy — so instead
//! of stepping one [`crate::LidSimulator`] per scenario, the
//! [`LaneLidSimulator`] packs up to 64 scenario instances ("lanes") into
//! `u64` control planes stored in [`crate::LanePlaneArena`]s and steps all
//! of them with each evaluation of the pure bitwise transfer functions of
//! [`wp_core::relay_station_control`] / [`wp_core::shell_fire_control`].
//!
//! # Why payloads can be ignored
//!
//! Throughput metrics (`golden_cycles`, `wpN_cycles`, `th_wp*`) depend only
//! on the control plane: *when* tokens move, never *what* they carry.  The
//! one data-dependent control input — [`wp_core::Process::is_halted`] — is
//! recovered from latency-insensitivity itself: a process's state after its
//! *k*-th firing is identical under **any** stall schedule, so "halted after
//! *k* firings" is a pure function of *k*.  The kernel therefore embeds one
//! live [`GoldenSimulator`] (which fires every process every cycle, so after
//! *c* golden cycles every process has fired exactly *c* times) as a shared
//! **halt script**: stepped just ahead of the lane clock, it reveals each
//! process's first-halt firing index `K_p`, and per-lane bitsliced
//! down-counters turn `fired ≥ K_p` into a halted plane.  Scenarios whose
//! payload values matter (traces, streaming `--verify` equivalence,
//! post-run state extraction) fall back to the scalar kernel — see the
//! eligibility rules in [`crate::SweepRunner`].
//!
//! # Packing heterogeneous relay-station counts
//!
//! Lanes of one batch may disagree on per-channel relay-station counts (the
//! Figure-1 sweep).  A channel allocates `max_rs` station slots and each
//! lane occupies the *suffix* `max_rs - n_lane ..` (chains aligned at the
//! consumer end), selected through constant per-slot lane masks: stations a
//! lane does not own receive a void input forever and stay identically
//! empty in that lane's bit position.
//!
//! # Equivalence contract
//!
//! Every lane is bit-identical — cycles, per-process firings, quiescence,
//! and error outcomes — to a scalar [`crate::LidSimulator`] run of the same
//! scenario (same builder, relay stations, [`StallSchedule`] lane, goal and
//! drain).  The property test `tests/lane_equivalence.rs` pins this for
//! random systems, schedules and lane counts, including ragged batches.

use std::collections::hash_map::{DefaultHasher, Entry};
use std::collections::HashMap;
use std::hash::Hasher;

use wp_core::{
    relay_station_control, shell_fire_control, shell_release_control, ShellConfig, SyncPolicy,
};

use crate::arena::LanePlaneArena;
use crate::golden::GoldenSimulator;
use crate::lid::{LidReport, DEFAULT_DEADLOCK_WINDOW};
use crate::oracle::{
    goal_offset, max_cyclic_gap, split_remaining, OracleRun, ORACLE_DETECTION_WINDOW,
};
use crate::spec::{ChannelSpec, ProcessId, SimError, SystemBuilder};
use crate::sweep::RunGoal;

/// Maximum number of scenario instances one [`LaneLidSimulator`] steps
/// simultaneously (one per bit of a `u64` control plane).
pub const MAX_LANES: usize = 64;

/// A deterministic pseudo-random firing gate for one scenario instance.
///
/// The schedule decides, for every `(process, cycle)` pair, whether an
/// otherwise possible firing is withheld this cycle.  Gating is
/// protocol-safe — a gated shell looks exactly like a slower block to its
/// neighbours — which makes schedules the canonical way to generate many
/// *distinct* scenarios of one netlist for throughput sweeps and for the
/// lane-vs-scalar equivalence tests.
///
/// A schedule is identified by a *family* `(seed, level)` plus a *lane*
/// index 0–63: one 64-bit hash word per `(family, process, cycle)` carries
/// all 64 lanes' stall bits, so the lane kernel evaluates a whole batch
/// with a single hash while the scalar kernel reads just its own bit.  The
/// stall density is `2^-level` (level 0 never stalls).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StallSchedule {
    seed: u64,
    level: u32,
    lane: u32,
}

/// `splitmix64`-style finaliser used for the schedule hash.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl StallSchedule {
    /// Creates the schedule of family `(seed, level)` that reads lane
    /// `lane` of every hash word.
    ///
    /// # Panics
    ///
    /// Panics if `lane >= 64`.
    pub fn new(seed: u64, level: u32, lane: u32) -> Self {
        assert!(lane < MAX_LANES as u32, "stall lane {lane} out of range");
        Self { seed, level, lane }
    }

    /// The `(seed, level)` family shared by all 64 lanes of one hash word.
    pub fn family(&self) -> (u64, u32) {
        (self.seed, self.level)
    }

    /// The lane (bit index) this schedule reads.
    pub fn lane(&self) -> u32 {
        self.lane
    }

    /// The 64-lane stall word of a family for one `(process, cycle)` pair:
    /// bit *l* set means lane *l* withholds that process's firing in that
    /// cycle.  The density is `2^-level` per bit (the AND of `level`
    /// independent hash words); `level == 0` never stalls.
    pub fn family_mask(seed: u64, level: u32, process: usize, cycle: u64) -> u64 {
        if level == 0 {
            return 0;
        }
        let mut word = !0u64;
        for draw in 0..level {
            let key = mix(cycle ^ ((process as u64) << 40) ^ (u64::from(draw) << 56));
            word &= mix(seed ^ key);
        }
        word
    }

    /// Whether this schedule stalls `process` in `cycle`.
    pub fn stalled(&self, process: usize, cycle: u64) -> bool {
        (Self::family_mask(self.seed, self.level, process, cycle) >> self.lane) & 1 == 1
    }
}

/// Bitsliced per-lane counters: plane *j* holds bit *j* of all 64 lanes'
/// counter values, so increment/decrement by a lane mask is a carry/borrow
/// chain over the planes (almost always 1–2 words touched) and comparisons
/// against a constant are word-parallel across lanes.
#[derive(Debug, Clone)]
struct LaneCounters {
    planes: Vec<u64>,
}

/// Number of bits needed to store values up to and including `max`.
fn bits_for(max: u64) -> usize {
    (64 - max.leading_zeros() as usize).max(1)
}

impl LaneCounters {
    /// All-zero counters of the given bit width (at least 1).
    fn new(width: usize) -> Self {
        Self {
            planes: vec![0; width.max(1)],
        }
    }

    /// Counters initialised to `value` in every lane of `lane_mask` (other
    /// lanes zero).  The width is sized for `value`.
    fn with_value(value: u64, lane_mask: u64) -> Self {
        let mut c = Self::new(bits_for(value));
        for (j, plane) in c.planes.iter_mut().enumerate() {
            if (value >> j) & 1 == 1 {
                *plane = lane_mask;
            }
        }
        c
    }

    /// Overwrites one lane's value (used when down-counters are built from
    /// per-lane firing counts).
    fn set_lane(&mut self, lane: usize, value: u64) {
        debug_assert!(value < (1u128 << self.planes.len()) as u64 || self.planes.len() >= 64);
        let bit = 1u64 << lane;
        for (j, plane) in self.planes.iter_mut().enumerate() {
            if (value >> j) & 1 == 1 {
                *plane |= bit;
            } else {
                *plane &= !bit;
            }
        }
    }

    /// Adds 1 to every lane in `mask` (ripple carry, early exit).
    fn add_mask(&mut self, mask: u64) {
        let mut carry = mask;
        for plane in &mut self.planes {
            if carry == 0 {
                return;
            }
            let sum = *plane ^ carry;
            carry &= *plane;
            *plane = sum;
        }
        debug_assert_eq!(carry, 0, "lane counter overflowed its bit width");
    }

    /// Subtracts 1 from every lane in `mask` (ripple borrow, early exit).
    fn sub_mask(&mut self, mask: u64) {
        let mut borrow = mask;
        for plane in &mut self.planes {
            if borrow == 0 {
                return;
            }
            let diff = *plane ^ borrow;
            borrow &= !*plane;
            *plane = diff;
        }
        debug_assert_eq!(borrow, 0, "lane counter underflowed");
    }

    /// Zeroes the counters of every lane in `mask`.
    fn clear_lanes(&mut self, mask: u64) {
        for plane in &mut self.planes {
            *plane &= !mask;
        }
    }

    /// Lanes whose counter is non-zero.
    fn nonzero_mask(&self) -> u64 {
        self.planes.iter().fold(0, |acc, p| acc | p)
    }

    /// Lanes whose counter is at least `threshold`.
    fn ge_const(&self, threshold: u64) -> u64 {
        let width = self.planes.len();
        if width < 64 && threshold >= 1u64 << width {
            return 0;
        }
        // MSB-down comparator: `gt` collects lanes already proven greater,
        // `eq` tracks lanes still equal on the inspected prefix.
        let mut gt = 0u64;
        let mut eq = !0u64;
        for j in (0..width).rev() {
            let plane = self.planes[j];
            if (threshold >> j) & 1 == 1 {
                eq &= plane;
            } else {
                gt |= eq & plane;
            }
        }
        gt | eq
    }

    /// One lane's counter value.
    fn get(&self, lane: usize) -> u64 {
        self.planes
            .iter()
            .enumerate()
            .fold(0, |acc, (j, p)| acc | ((p >> lane) & 1) << j)
    }
}

/// Iterates the set bit positions of a lane mask.
fn iter_lanes(mut mask: u64) -> impl Iterator<Item = usize> {
    std::iter::from_fn(move || {
        if mask == 0 {
            None
        } else {
            let lane = mask.trailing_zeros() as usize;
            mask &= mask - 1;
            Some(lane)
        }
    })
}

/// The per-lane inputs of a lane batch: everything a scenario may vary
/// *without* changing the control structure of the netlist.
#[derive(Debug, Clone, Default)]
pub struct LaneScenario {
    /// Relay stations per channel, in channel order (may differ per lane).
    pub relay_stations: Vec<usize>,
    /// Optional firing gate (all lanes of one batch must share the schedule
    /// family; each lane reads its own bit).
    pub stall: Option<StallSchedule>,
}

/// The per-lane result of a [`LaneLidSimulator::run`].
#[derive(Debug, Clone, PartialEq)]
pub struct LaneOutcome {
    /// Cycles elapsed when the lane reached its run goal (drain cycles
    /// excluded here, included in `report.cycles`), exactly as the scalar
    /// kernel reports it.
    pub cycles_to_goal: u64,
    /// The lane's [`LidReport`], bit-identical to the scalar kernel's.
    pub report: LidReport,
}

/// Shared halt script of one process (see the module docs).
#[derive(Debug)]
enum HaltScript {
    /// The golden twin has not halted this process yet: no lane can be
    /// halted either (every lane's firing count trails the golden horizon).
    Unknown,
    /// First-halt firing index `K_p` is known; `rem` counts each lane down
    /// from `K_p - fired` and the halted plane latches on zero.
    Counting(LaneCounters),
    /// Every lane of the batch is halted: nothing left to track.
    Done,
}

/// Per-lane bookkeeping snapshotted when a lane finishes (goal + drain).
struct LaneFinal {
    cycles: u64,
    firings: Vec<u64>,
}

/// What the lane kernel's one-period re-simulation established (the lane
/// counterpart of the scalar verifier in [`crate::LidSimulator`]).
enum LaneVerdict {
    /// The joint control state repeated exactly: `fire_masks[t * n + p]`
    /// holds the lanes that fired process `p` in in-period cycle `t`.
    Verified { fire_masks: Vec<u64> },
    /// The candidate was a hash collision (or a halt flipped inside the
    /// window) — or every lane was decided mid-verification; either way
    /// there is nothing to extrapolate from.
    NotPeriodic,
}

/// The bit-parallel latency-insensitive kernel: up to 64 instances of one
/// netlist, stepped together (see the module docs).
///
/// Construction fixes the netlist, the per-lane relay-station budgets and
/// stall schedules; [`LaneLidSimulator::run`] then executes one goal +
/// drain lifecycle and returns a per-lane [`LaneOutcome`] (or the lane's
/// [`SimError`]), bit-identical to scalar [`crate::LidSimulator`] runs.
pub struct LaneLidSimulator<V> {
    lanes: usize,
    lane_mask: u64,
    channels: Vec<ChannelSpec>,
    /// Per-process `(num_inputs, num_outputs)`.
    ports: Vec<(usize, usize)>,
    almost_full: u64,
    deadlock_window: u64,

    // Relay-chain planes, grouped by channel with `max_rs` planes each.
    rs_main: LanePlaneArena,
    rs_aux: LanePlaneArena,
    rs_stop: LanePlaneArena,
    /// Constant per-slot masks: lanes whose chain *starts* at this slot
    /// (the producer injects here) …
    rs_inject: LanePlaneArena,
    /// … and lanes whose chain already covers the slot above (the slot's
    /// input is the previous slot's main register).
    rs_above: LanePlaneArena,
    /// Per channel: lanes with zero relay stations (transparent wire).
    rs_zero: Vec<u64>,

    // Shell planes, grouped by process.
    out_valid: LanePlaneArena,
    stop_reg: LanePlaneArena,
    /// Per-cycle scratch: delivered-token validity per (process, input).
    delivered: LanePlaneArena,
    /// Per-cycle scratch: observed stop per (process, output).
    out_stop: LanePlaneArena,
    /// Input-queue occupancy per (process, input port).
    occ: Vec<Vec<LaneCounters>>,
    /// Firing counters per process (full 64-bit width, no flushing).
    fired: Vec<LaneCounters>,
    /// Halted plane per process (`fired ≥ K_p`).
    halted: Vec<u64>,
    scripts: Vec<HaltScript>,

    /// The live golden twin driving the shared halt script.
    golden: GoldenSimulator<V>,
    /// Stall-schedule family + per-lane bit assignment, if any.
    stall: Option<StallPlan>,
    /// Per-process fire mask of the current cycle (persistent scratch).
    fire_scratch: Vec<u64>,
    clock: u64,
}

/// The batch view of the lanes' stall schedules.
#[derive(Debug)]
struct StallPlan {
    seed: u64,
    level: u32,
    /// Kernel lane -> schedule lane (bit of the family word).
    assignment: Vec<u32>,
    /// Fast path: kernel lane *i* reads bit *i* for every lane.
    identity: bool,
}

impl StallPlan {
    /// The stall plane for `(process, cycle)` across all kernel lanes.
    fn mask(&self, process: usize, cycle: u64) -> u64 {
        let word = StallSchedule::family_mask(self.seed, self.level, process, cycle);
        if self.identity {
            word
        } else {
            self.assignment
                .iter()
                .enumerate()
                .fold(0, |acc, (i, &lane)| acc | ((word >> lane) & 1) << i)
        }
    }
}

impl<V> std::fmt::Debug for LaneLidSimulator<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LaneLidSimulator")
            .field("lanes", &self.lanes)
            .field("processes", &self.ports.len())
            .field("channels", &self.channels.len())
            .field("clock", &self.clock)
            .finish()
    }
}

impl<V: Clone + PartialEq> LaneLidSimulator<V> {
    /// Builds the lane kernel from one netlist description plus the
    /// per-lane variations.
    ///
    /// `builder` fixes the control structure (processes, channels) shared
    /// by every lane; its own relay-station counts are ignored in favour of
    /// each [`LaneScenario::relay_stations`].  The builder's processes also
    /// seed the embedded golden twin that drives the shared halt script.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidSystem`] when the description fails
    /// validation, the lane count is 0 or exceeds [`MAX_LANES`], the shell
    /// policy is not [`SyncPolicy::Strict`] (the oracle policy consults
    /// payload-dependent `required_inputs`, which the control plane cannot
    /// see), a lane's relay-station list does not match the channel count,
    /// or the lanes' stall schedules mix families.
    pub fn new(
        builder: SystemBuilder<V>,
        lanes: &[LaneScenario],
        config: ShellConfig,
    ) -> Result<Self, SimError> {
        if lanes.is_empty() || lanes.len() > MAX_LANES {
            return Err(SimError::InvalidSystem(format!(
                "lane batch must hold 1..={MAX_LANES} lanes, got {}",
                lanes.len()
            )));
        }
        if config.policy != SyncPolicy::Strict {
            return Err(SimError::InvalidSystem(
                "the lane kernel supports only strict (WP1) shells".into(),
            ));
        }
        if config.fifo_capacity < 2 {
            return Err(SimError::InvalidSystem(
                "shell queues need a capacity of at least 2".into(),
            ));
        }
        builder.validate()?;
        let (processes, channels) = builder.into_parts();
        let ports: Vec<(usize, usize)> = processes
            .iter()
            .map(|p| (p.num_inputs(), p.num_outputs()))
            .collect();

        for (l, lane) in lanes.iter().enumerate() {
            if lane.relay_stations.len() != channels.len() {
                return Err(SimError::InvalidSystem(format!(
                    "lane {l} lists {} relay-station counts for {} channels",
                    lane.relay_stations.len(),
                    channels.len()
                )));
            }
        }
        let stall = build_stall_plan(lanes)?;

        // Rebuild a system description around the same process boxes to
        // feed the golden twin (relay stations are irrelevant to it).
        let mut golden_builder = SystemBuilder::new();
        for p in processes {
            golden_builder.add_process(p);
        }
        for ch in &channels {
            golden_builder.connect(
                ch.name.clone(),
                ch.src,
                ch.src_port,
                ch.dst,
                ch.dst_port,
                ch.relay_stations,
            );
        }
        let mut golden = GoldenSimulator::new(golden_builder)?;
        golden.set_trace_enabled(false);

        let lane_count = lanes.len();
        let lane_mask = if lane_count == 64 {
            !0u64
        } else {
            (1u64 << lane_count) - 1
        };

        // Suffix-aligned relay slots: lane l of channel c occupies slots
        // `max_rs - n .. max_rs`.
        let max_rs: Vec<usize> = (0..channels.len())
            .map(|c| lanes.iter().map(|l| l.relay_stations[c]).max().unwrap_or(0))
            .collect();
        let mut rs_inject = LanePlaneArena::new(max_rs.iter().copied());
        let mut rs_above = LanePlaneArena::new(max_rs.iter().copied());
        let mut rs_zero = vec![0u64; channels.len()];
        for (c, &m) in max_rs.iter().enumerate() {
            for (l, lane) in lanes.iter().enumerate() {
                let n = lane.relay_stations[c];
                let bit = 1u64 << l;
                if n == 0 {
                    rs_zero[c] |= bit;
                    continue;
                }
                let start = m - n;
                let slots = rs_inject.of_mut(c);
                slots[start] |= bit;
                let slots = rs_above.of_mut(c);
                for slot in slots.iter_mut().skip(start + 1) {
                    *slot |= bit;
                }
            }
        }

        let occ_width = bits_for(config.fifo_capacity as u64);
        let occ = ports
            .iter()
            .map(|&(ins, _)| (0..ins).map(|_| LaneCounters::new(occ_width)).collect())
            .collect();
        let mut out_valid = LanePlaneArena::new(ports.iter().map(|&(_, outs)| outs));
        // Every shell presents its reset output as Valid on every port.
        for p in 0..ports.len() {
            for plane in out_valid.of_mut(p) {
                *plane = lane_mask;
            }
        }
        // A process halted at reset (`K_p = 0`) starts halted in every lane.
        let mut halted = vec![0u64; ports.len()];
        let mut scripts = Vec::with_capacity(ports.len());
        for (p, h) in halted.iter_mut().enumerate() {
            if golden.is_halted(p) {
                *h = lane_mask;
                scripts.push(HaltScript::Done);
            } else {
                scripts.push(HaltScript::Unknown);
            }
        }

        Ok(Self {
            lanes: lane_count,
            lane_mask,
            ports: ports.clone(),
            almost_full: config.fifo_capacity as u64 - 1,
            deadlock_window: DEFAULT_DEADLOCK_WINDOW,
            rs_main: LanePlaneArena::new(max_rs.iter().copied()),
            rs_aux: LanePlaneArena::new(max_rs.iter().copied()),
            rs_stop: LanePlaneArena::new(max_rs.iter().copied()),
            rs_inject,
            rs_above,
            rs_zero,
            out_valid,
            stop_reg: LanePlaneArena::new(ports.iter().map(|&(ins, _)| ins)),
            delivered: LanePlaneArena::new(ports.iter().map(|&(ins, _)| ins)),
            out_stop: LanePlaneArena::new(ports.iter().map(|&(_, outs)| outs)),
            occ,
            fired: (0..ports.len()).map(|_| LaneCounters::new(64)).collect(),
            halted,
            scripts,
            golden,
            stall,
            fire_scratch: vec![0; ports.len()],
            channels,
            clock: 0,
        })
    }

    /// Number of lanes in the batch.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Cycles simulated so far (all lanes advance in lockstep).
    pub fn cycles(&self) -> u64 {
        self.clock
    }

    /// Changes the deadlock-detection window (consecutive firing-free
    /// cycles per lane), as [`crate::LidSimulator::set_deadlock_window`].
    pub fn set_deadlock_window(&mut self, cycles: u64) {
        self.deadlock_window = cycles;
    }

    /// Steps every lane for exactly `cycles` cycles with no goal tracking —
    /// the lane counterpart of [`crate::LidSimulator::run_for`], used by
    /// the allocation-free steady-state proof and by benches.
    ///
    /// Performs no heap allocation in steady state: all planes and
    /// counters are preallocated, and the embedded golden twin (traces
    /// disabled) steps allocation-free as well.  The only allocating event
    /// is the one-time discovery of a process's first-halt index.
    pub fn run_for(&mut self, cycles: u64) {
        for _ in 0..cycles {
            self.step_cycle(self.lane_mask);
        }
    }

    /// Runs the goal + drain lifecycle on a freshly constructed kernel and
    /// returns one result per lane, in lane order: the lane's
    /// [`LaneOutcome`] or the same [`SimError`] the scalar kernel would
    /// have produced (`MaxCyclesExceeded`, `Deadlock`).
    ///
    /// Lanes reach their goals at different cycles; finished lanes are
    /// frozen (their shells stop firing, which is protocol-safe) while the
    /// rest keep stepping in lockstep, and each lane's report is
    /// snapshotted the moment it finishes, so results never depend on how
    /// scenarios were packed into lanes.
    pub fn run(
        &mut self,
        goal: RunGoal,
        drain: Option<(u64, u64)>,
    ) -> Vec<Result<LaneOutcome, SimError>> {
        debug_assert_eq!(self.clock, 0, "run() expects a fresh kernel");
        let (max_cycles, mut goal_rem) = match goal {
            RunGoal::UntilHalt { max_cycles, .. } => (Some(max_cycles), None),
            RunGoal::UntilFirings {
                target, max_cycles, ..
            } => (
                Some(max_cycles),
                Some(LaneCounters::with_value(target, self.lane_mask)),
            ),
            RunGoal::ForCycles(_) => (None, None),
        };

        let mut running = self.lane_mask;
        let mut draining = 0u64;
        let mut idle = LaneCounters::new(bits_for(self.deadlock_window) + 1);
        let (drain_idle_w, drain_extra_w) = drain
            .map(|(i, e)| (bits_for(i) + 1, bits_for(e) + 1))
            .unwrap_or((1, 1));
        let mut drain_idle = LaneCounters::new(drain_idle_w);
        let mut drain_extra = LaneCounters::new(drain_extra_w);
        let mut cycles_to_goal = [0u64; MAX_LANES];
        let mut finals: Vec<Option<Result<LaneFinal, SimError>>> =
            (0..self.lanes).map(|_| None).collect();

        loop {
            // Boundary checks, in the scalar kernel's order: goal first,
            // then the cycle budget, then deadlock.
            let goal_now = running
                & match goal {
                    RunGoal::UntilHalt { process, .. } => self.halted[process],
                    RunGoal::UntilFirings { .. } => {
                        let rem = goal_rem.as_ref().expect("UntilFirings allocates a counter");
                        !rem.nonzero_mask()
                    }
                    RunGoal::ForCycles(cycles) => {
                        if self.clock >= cycles {
                            !0
                        } else {
                            0
                        }
                    }
                };
            for lane in iter_lanes(goal_now) {
                cycles_to_goal[lane] = self.clock;
            }
            running &= !goal_now;
            if drain.is_some() {
                draining |= goal_now;
                drain_idle.clear_lanes(goal_now);
                drain_extra.clear_lanes(goal_now);
            } else {
                for lane in iter_lanes(goal_now) {
                    finals[lane] = Some(Ok(self.snapshot(lane)));
                }
            }
            // Drain exit: the scalar loop `while idle < idle_cycles &&
            // extra < max_extra` checks before each extra step, so lanes
            // that just entered (idle = extra = 0) exit immediately when a
            // bound is zero.
            if let Some((idle_cycles, max_extra)) = drain {
                let exit =
                    draining & (drain_idle.ge_const(idle_cycles) | drain_extra.ge_const(max_extra));
                for lane in iter_lanes(exit) {
                    finals[lane] = Some(Ok(self.snapshot(lane)));
                }
                draining &= !exit;
            }
            if let Some(max_cycles) = max_cycles {
                if running != 0 && self.clock >= max_cycles {
                    for lane in iter_lanes(running) {
                        finals[lane] = Some(Err(SimError::MaxCyclesExceeded { max_cycles }));
                    }
                    running = 0;
                }
                let dead = running & idle.ge_const(self.deadlock_window);
                for lane in iter_lanes(dead) {
                    finals[lane] = Some(Err(SimError::Deadlock { cycle: self.clock }));
                }
                running &= !dead;
            }

            let active = running | draining;
            if active == 0 {
                break;
            }

            let fired_any = self.step_cycle(active);

            // Per-lane idle/extra accounting mirrors the scalar kernel:
            // `cycles_since_firing` resets on any firing in the lane, the
            // drain loop counts its own fresh idle window and extra cycles.
            idle.clear_lanes(fired_any);
            idle.add_mask(running & !fired_any);
            if drain.is_some() {
                drain_extra.add_mask(draining);
                drain_idle.clear_lanes(draining & fired_any);
                drain_idle.add_mask(draining & !fired_any);
            }
            if let (Some(rem), RunGoal::UntilFirings { process, .. }) = (&mut goal_rem, goal) {
                rem.sub_mask(self.fire_scratch[process] & running);
            }
        }

        finals
            .into_iter()
            .enumerate()
            .map(|(lane, f)| {
                f.expect("every lane finishes before the loop exits")
                    .map(|fin| LaneOutcome {
                        cycles_to_goal: cycles_to_goal[lane],
                        report: lane_report(fin),
                    })
            })
            .collect()
    }

    /// Snapshots one lane's final accounting (its report is materialised
    /// lazily when results are assembled).
    fn snapshot(&self, lane: usize) -> LaneFinal {
        LaneFinal {
            cycles: self.clock,
            firings: self.fired.iter().map(|f| f.get(lane)).collect(),
        }
    }

    /// The packed control state of the whole batch as one flat word vector:
    /// every relay-station plane, output-validity and stop-register plane,
    /// queue-occupancy counter plane and halted plane.  Because lanes are
    /// bit-slices of these words and never interact, a repeat of this joint
    /// vector proves *every* lane's control trajectory — and therefore its
    /// firing pattern — repeats with the joint period (see
    /// [`crate::ORACLE_DETECTION_WINDOW`] for the soundness argument shared
    /// with the scalar oracle).  The monotonic `fired` counters and the
    /// halt-script down-counters are deliberately excluded, exactly like
    /// the scalar kernel's firing counters: their effect on the control
    /// plane is fully captured by the halted planes.
    fn control_vec(&self, out: &mut Vec<u64>) {
        out.clear();
        out.extend_from_slice(self.rs_main.planes());
        out.extend_from_slice(self.rs_aux.planes());
        out.extend_from_slice(self.rs_stop.planes());
        out.extend_from_slice(self.out_valid.planes());
        out.extend_from_slice(self.stop_reg.planes());
        for queues in &self.occ {
            for counter in queues {
                out.extend_from_slice(&counter.planes);
            }
        }
        out.extend_from_slice(&self.halted);
    }

    /// Hashes the packed control state (scratch avoids re-allocating the
    /// state vector every cycle).
    fn control_hash(&self, scratch: &mut Vec<u64>) -> u64 {
        self.control_vec(scratch);
        let mut hasher = DefaultHasher::new();
        for &word in scratch.iter() {
            hasher.write_u64(word);
        }
        hasher.finish()
    }

    /// The lane counterpart of
    /// [`crate::LidSimulator::run_until_firings_extrapolated`]: runs every
    /// lane of a freshly constructed kernel until `node` has fired `target`
    /// times, detecting the steady-state period of the *joint* control
    /// state and extrapolating each lane's goal cycle and firing counters
    /// in O(1) once the period is verified.
    ///
    /// Lanes are independent bit-slices of the control planes, so one joint
    /// period (the least common multiple of the per-lane periods, found by
    /// hashing all planes at once) proves every lane's pattern; lanes that
    /// reach their goal before a period is found are reported from plain
    /// simulation, bit-identical to [`LaneLidSimulator::run`] without a
    /// drain.  Batches with a stall schedule never extrapolate — the
    /// schedule hashes the absolute cycle, so the control plane alone does
    /// not determine the future — and simply simulate to their goals.
    ///
    /// Returns one [`OracleRun`] (or the lane's [`SimError`], exactly as
    /// plain simulation would have produced it) per lane, in lane order.
    /// As with the scalar oracle, an extrapolated kernel's architectural
    /// state is frozen at the last simulated cycle — do not drain it.
    pub fn run_until_firings_extrapolated(
        &mut self,
        node: ProcessId,
        target: u64,
        max_cycles: u64,
    ) -> Vec<Result<OracleRun, SimError>> {
        debug_assert_eq!(self.clock, 0, "expects a fresh kernel");
        let mut results: Vec<Option<Result<OracleRun, SimError>>> =
            (0..self.lanes).map(|_| None).collect();
        let mut undecided = self.lane_mask;
        let mut goal_rem = LaneCounters::with_value(target, self.lane_mask);
        let mut idle = LaneCounters::new(bits_for(self.deadlock_window) + 1);
        let mut detect = self.stall.is_none();
        let mut seen: HashMap<u64, u64> = HashMap::new();
        let mut scratch: Vec<u64> = Vec::new();

        loop {
            // Boundary checks in the plain kernel's order: goal first, then
            // the cycle budget, then deadlock.
            let goal_now = undecided & !goal_rem.nonzero_mask();
            for lane in iter_lanes(goal_now) {
                results[lane] = Some(Ok(self.plain_lane_outcome(lane)));
            }
            undecided &= !goal_now;
            if undecided != 0 && self.clock >= max_cycles {
                for lane in iter_lanes(undecided) {
                    results[lane] = Some(Err(SimError::MaxCyclesExceeded { max_cycles }));
                }
                undecided = 0;
            }
            let dead = undecided & idle.ge_const(self.deadlock_window);
            for lane in iter_lanes(dead) {
                results[lane] = Some(Err(SimError::Deadlock { cycle: self.clock }));
            }
            undecided &= !dead;
            if undecided == 0 {
                break;
            }

            if detect && self.clock <= ORACLE_DETECTION_WINDOW {
                let hash = self.control_hash(&mut scratch);
                match seen.entry(hash) {
                    Entry::Occupied(entry) => {
                        let period = self.clock - *entry.get();
                        let verdict = self.verify_lane_period(
                            node,
                            max_cycles,
                            period,
                            &mut results,
                            &mut undecided,
                            &mut goal_rem,
                            &mut idle,
                        );
                        match verdict {
                            LaneVerdict::Verified { fire_masks } => {
                                self.extrapolate_lanes(
                                    node,
                                    target,
                                    max_cycles,
                                    period,
                                    &fire_masks,
                                    &mut results,
                                    &mut undecided,
                                );
                                // Lanes that cannot extrapolate (their goal
                                // process never fires again, or their
                                // steady-state gaps reach the deadlock
                                // window) finish by plain simulation; the
                                // verified period would only re-verify, so
                                // detection is done.
                                detect = false;
                            }
                            LaneVerdict::NotPeriodic => {}
                        }
                        seen.clear();
                        // Re-run the boundary checks before hashing or
                        // stepping again: verification advanced the clock.
                        continue;
                    }
                    Entry::Vacant(entry) => {
                        entry.insert(self.clock);
                    }
                }
            }

            let fired_any = self.step_cycle(self.lane_mask);
            idle.clear_lanes(fired_any);
            idle.add_mask(undecided & !fired_any);
            goal_rem.sub_mask(self.fire_scratch[node] & undecided);
        }

        results
            .into_iter()
            .map(|r| r.expect("every lane is decided before the loop exits"))
            .collect()
    }

    /// One lane's outcome when its goal was reached by plain simulation.
    fn plain_lane_outcome(&self, lane: usize) -> OracleRun {
        OracleRun {
            report: lane_report(self.snapshot(lane)),
            simulated_cycles: self.clock,
            extrapolated: false,
        }
    }

    /// Re-simulates exactly `period` cycles and compares the complete
    /// control vector against the snapshot taken at entry (defeating hash
    /// collisions), recording each cycle's per-process fire masks.  The
    /// per-cycle boundary bookkeeping of the main loop continues, so lanes
    /// may reach their goals — or run out of budget — mid-verification.
    #[allow(clippy::too_many_arguments)]
    fn verify_lane_period(
        &mut self,
        node: ProcessId,
        max_cycles: u64,
        period: u64,
        results: &mut [Option<Result<OracleRun, SimError>>],
        undecided: &mut u64,
        goal_rem: &mut LaneCounters,
        idle: &mut LaneCounters,
    ) -> LaneVerdict {
        let n = self.ports.len();
        let mut expect: Vec<u64> = Vec::new();
        self.control_vec(&mut expect);
        let mut fire_masks: Vec<u64> = Vec::with_capacity(period as usize * n);
        for _ in 0..period {
            let fired_any = self.step_cycle(self.lane_mask);
            fire_masks.extend_from_slice(&self.fire_scratch);
            idle.clear_lanes(fired_any);
            idle.add_mask(*undecided & !fired_any);
            goal_rem.sub_mask(self.fire_scratch[node] & *undecided);

            let goal_now = *undecided & !goal_rem.nonzero_mask();
            for lane in iter_lanes(goal_now) {
                results[lane] = Some(Ok(self.plain_lane_outcome(lane)));
            }
            *undecided &= !goal_now;
            if *undecided != 0 && self.clock >= max_cycles {
                for lane in iter_lanes(*undecided) {
                    results[lane] = Some(Err(SimError::MaxCyclesExceeded { max_cycles }));
                }
                *undecided = 0;
            }
            let dead = *undecided & idle.ge_const(self.deadlock_window);
            for lane in iter_lanes(dead) {
                results[lane] = Some(Err(SimError::Deadlock { cycle: self.clock }));
            }
            *undecided &= !dead;
            if *undecided == 0 {
                return LaneVerdict::NotPeriodic;
            }
        }
        let mut actual: Vec<u64> = Vec::new();
        self.control_vec(&mut actual);
        if actual == expect {
            LaneVerdict::Verified { fire_masks }
        } else {
            LaneVerdict::NotPeriodic
        }
    }

    /// Extrapolates every still-undecided lane from the verified per-cycle
    /// fire masks, using the same arithmetic (and the same exact
    /// error-parity guarantees) as the scalar oracle: the goal cycle is
    /// `clock + k·period + t + 1`, the budget errs iff that exceeds
    /// `max_cycles`, and every firing counter is the simulated count plus
    /// `k` whole periods plus the partial period up to `t`.  Lanes whose
    /// goal process never fires in the period, or whose steady-state firing
    /// gaps reach the deadlock window, are left undecided — plain
    /// simulation then reproduces exactly the budget or deadlock error the
    /// un-extrapolated run would have hit.
    #[allow(clippy::too_many_arguments)]
    fn extrapolate_lanes(
        &self,
        node: ProcessId,
        target: u64,
        max_cycles: u64,
        period: u64,
        fire_masks: &[u64],
        results: &mut [Option<Result<OracleRun, SimError>>],
        undecided: &mut u64,
    ) {
        let n = self.ports.len();
        let cycles_per_period = period as usize;
        let mut cum_node: Vec<u64> = Vec::with_capacity(cycles_per_period);
        let mut fired_lane: Vec<bool> = Vec::with_capacity(cycles_per_period);
        for lane in iter_lanes(*undecided) {
            let bit = 1u64 << lane;
            cum_node.clear();
            fired_lane.clear();
            let mut cum = 0u64;
            for t in 0..cycles_per_period {
                let row = &fire_masks[t * n..(t + 1) * n];
                cum += u64::from(row[node] & bit != 0);
                cum_node.push(cum);
                fired_lane.push(row.iter().any(|&mask| mask & bit != 0));
            }
            let delta = cum;
            if delta == 0 || max_cyclic_gap(&fired_lane) >= self.deadlock_window {
                continue;
            }
            let rem = target - self.fired[node].get(lane);
            debug_assert!(rem >= 1, "an undecided lane has firings left to go");
            let (k, residue) = split_remaining(rem, delta);
            let t = goal_offset(&cum_node, residue);
            let goal_cycle = self.clock + k * period + t as u64 + 1;
            let outcome = if goal_cycle > max_cycles {
                Err(SimError::MaxCyclesExceeded { max_cycles })
            } else {
                let firings: Vec<u64> = (0..n)
                    .map(|p| {
                        let mut whole = 0u64;
                        let mut partial = 0u64;
                        for (step, row) in fire_masks.chunks_exact(n).enumerate() {
                            let fired_here = u64::from(row[p] & bit != 0);
                            whole += fired_here;
                            if step <= t {
                                partial += fired_here;
                            }
                        }
                        self.fired[p].get(lane) + k * whole + partial
                    })
                    .collect();
                Ok(OracleRun {
                    report: lane_report(LaneFinal {
                        cycles: goal_cycle,
                        firings,
                    }),
                    simulated_cycles: self.clock,
                    extrapolated: true,
                })
            };
            results[lane] = Some(outcome);
            *undecided &= !bit;
        }
    }

    /// Advances the embedded golden twin until it has simulated at least
    /// `needed` cycles, recording each process's first-halt firing index as
    /// it surfaces: after *c* golden cycles every process has fired *c*
    /// times, so a process first observed halted at golden cycle *c* has
    /// `K_p = c`.  At discovery no lane can have fired `K_p` times yet
    /// (every lane's count trails the previous horizon), so the down-
    /// counters are built before any lane needs them.
    fn extend_horizon(&mut self, needed: u64) {
        while self.golden.cycles() < needed {
            self.golden.step();
            for p in 0..self.ports.len() {
                if matches!(self.scripts[p], HaltScript::Unknown) && self.golden.is_halted(p) {
                    let k = self.golden.cycles();
                    let mut rem = LaneCounters::new(bits_for(k));
                    for lane in 0..self.lanes {
                        let fired = self.fired[p].get(lane);
                        debug_assert!(fired < k, "a lane overtook the halt horizon");
                        rem.set_lane(lane, k - fired);
                    }
                    self.scripts[p] = HaltScript::Counting(rem);
                }
            }
        }
    }

    /// One lockstep protocol cycle over every lane in `active`; returns the
    /// lanes in which at least one process fired.
    fn step_cycle(&mut self, active: u64) -> u64 {
        // The halted planes consulted below must cover firing counts up to
        // this cycle's clock.
        self.extend_horizon(self.clock + 1);

        let Self {
            lane_mask,
            channels,
            ports,
            almost_full,
            rs_main,
            rs_aux,
            rs_stop,
            rs_inject,
            rs_above,
            rs_zero,
            out_valid,
            stop_reg,
            delivered,
            out_stop,
            occ,
            fired,
            halted,
            scripts,
            stall,
            fire_scratch,
            clock,
            ..
        } = self;

        // Phase 1: per channel, derive the delivered-validity and observed-
        // stop planes from the registered shell/station planes, then step
        // the station slots consumer-to-producer exactly like the scalar
        // `RelayChain::update` (each slot sees its neighbours' pre-update
        // wires; the carried word is the one stop each slot drove upstream).
        for (c, ch) in channels.iter().enumerate() {
            let produced = out_valid.get(ch.src, ch.src_port);
            let consumer_stop = stop_reg.get(ch.dst, ch.dst_port);
            let m = rs_main.of(c).len();
            let zero = rs_zero[c];
            let (deliver, observed_stop) = if m == 0 {
                (produced, consumer_stop)
            } else {
                let deliver = (zero & produced) | (!zero & rs_main.get(c, m - 1));
                let mut observed = zero & consumer_stop;
                for j in 0..m {
                    observed |= rs_inject.get(c, j) & rs_stop.get(c, j);
                }
                let mut down = consumer_stop;
                for j in (0..m).rev() {
                    let pre_stop = rs_stop.get(c, j);
                    let upstream = (rs_inject.get(c, j) & produced)
                        | (rs_above.get(c, j) & if j > 0 { rs_main.get(c, j - 1) } else { 0 });
                    let ctrl = relay_station_control(
                        rs_main.get(c, j),
                        rs_aux.get(c, j),
                        pre_stop,
                        !pre_stop & upstream,
                        down,
                    );
                    rs_main.set(c, j, ctrl.main);
                    rs_aux.set(c, j, ctrl.aux);
                    rs_stop.set(c, j, ctrl.stop);
                    down = pre_stop;
                }
                (deliver, observed)
            };
            delivered.set(ch.dst, ch.dst_port, deliver);
            out_stop.set(ch.src, ch.src_port, observed_stop);
        }

        // Phase 2: shells, in the scalar `Shell::update` order — accept,
        // release, fire, stop refresh.
        let mut fired_any = 0u64;
        for (p, &(ins, outs)) in ports.iter().enumerate() {
            for (i, slot) in occ[p].iter_mut().enumerate().take(ins) {
                let accept = delivered.get(p, i) & !stop_reg.get(p, i);
                slot.add_mask(accept);
            }
            let mut outputs_clear = !0u64;
            for j in 0..outs {
                let held = shell_release_control(out_valid.get(p, j), out_stop.get(p, j));
                out_valid.set(p, j, held);
                outputs_clear &= !held;
            }
            let mut inputs_ready = !0u64;
            for slot in occ[p].iter().take(ins) {
                inputs_ready &= slot.nonzero_mask();
            }
            let gated = match stall {
                Some(plan) => plan.mask(p, *clock),
                None => 0,
            };
            let eligible = active & !halted[p] & !gated;
            let fire = shell_fire_control(eligible, outputs_clear, inputs_ready);
            if fire != 0 {
                for slot in occ[p].iter_mut().take(ins) {
                    slot.sub_mask(fire);
                }
                for j in 0..outs {
                    out_valid.set(p, j, out_valid.get(p, j) | fire);
                }
                fired[p].add_mask(fire);
                if let HaltScript::Counting(rem) = &mut scripts[p] {
                    rem.sub_mask(fire);
                    halted[p] |= !rem.nonzero_mask() & *lane_mask;
                    if halted[p] == *lane_mask {
                        scripts[p] = HaltScript::Done;
                    }
                }
            }
            fire_scratch[p] = fire;
            fired_any |= fire;
            for (i, slot) in occ[p].iter().enumerate().take(ins) {
                stop_reg.set(p, i, slot.ge_const(*almost_full));
            }
        }

        *clock += 1;
        fired_any & active
    }
}

/// Validates and summarises the lanes' stall schedules: either no lane has
/// one, or all lanes share one family (each reading its own bit).
fn build_stall_plan(lanes: &[LaneScenario]) -> Result<Option<StallPlan>, SimError> {
    let mut family: Option<(u64, u32)> = None;
    let mut assignment = Vec::with_capacity(lanes.len());
    let mut with_schedule = 0usize;
    for lane in lanes {
        match &lane.stall {
            Some(s) => {
                with_schedule += 1;
                match family {
                    None => family = Some(s.family()),
                    Some(f) if f != s.family() => {
                        return Err(SimError::InvalidSystem(
                            "lane batch mixes stall-schedule families".into(),
                        ))
                    }
                    Some(_) => {}
                }
                assignment.push(s.lane());
            }
            None => assignment.push(0),
        }
    }
    match family {
        None => Ok(None),
        Some((seed, level)) => {
            if with_schedule != lanes.len() {
                return Err(SimError::InvalidSystem(
                    "lane batch mixes scheduled and unscheduled lanes".into(),
                ));
            }
            let identity = assignment.iter().enumerate().all(|(i, &l)| l as usize == i);
            Ok(Some(StallPlan {
                seed,
                level,
                assignment,
                identity,
            }))
        }
    }
}

/// Materialises one lane's [`LidReport`] from its final accounting, field
/// by field as the scalar [`crate::LidSimulator::report`] computes it
/// (strict shells never discard, so that column is all zeros).
fn lane_report(fin: LaneFinal) -> LidReport {
    let total_firings = fin.firings.iter().sum();
    let throughput = fin
        .firings
        .iter()
        .map(|&f| {
            if fin.cycles == 0 {
                0.0
            } else {
                f as f64 / fin.cycles as f64
            }
        })
        .collect();
    let discarded = vec![0; fin.firings.len()];
    LidReport {
        cycles: fin.cycles,
        firings: fin.firings,
        total_firings,
        discarded,
        throughput,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lid::LidSimulator;
    use crate::testutil::RingStage;

    #[test]
    fn lane_counters_add_sub_and_compare() {
        let mut c = LaneCounters::new(4);
        c.add_mask(0b1011);
        c.add_mask(0b0011);
        c.add_mask(0b0001);
        assert_eq!(c.get(0), 3);
        assert_eq!(c.get(1), 2);
        assert_eq!(c.get(2), 0);
        assert_eq!(c.get(3), 1);
        assert_eq!(c.nonzero_mask(), 0b1011);
        assert_eq!(c.ge_const(2), 0b0011);
        assert_eq!(c.ge_const(1), 0b1011);
        assert_eq!(c.ge_const(0), !0);
        assert_eq!(c.ge_const(16), 0, "beyond the width nothing compares");
        c.sub_mask(0b0011);
        assert_eq!(c.get(0), 2);
        assert_eq!(c.get(1), 1);
        c.clear_lanes(0b0001);
        assert_eq!(c.get(0), 0);
        assert_eq!(c.get(3), 1);
    }

    #[test]
    fn lane_counters_initialisation_and_set_lane() {
        let mut c = LaneCounters::with_value(13, 0b0110);
        assert_eq!(c.get(0), 0);
        assert_eq!(c.get(1), 13);
        assert_eq!(c.get(2), 13);
        c.set_lane(2, 5);
        assert_eq!(c.get(2), 5);
        assert_eq!(c.get(1), 13, "other lanes are untouched");
        assert_eq!(c.ge_const(13), 0b0010);
    }

    #[test]
    fn stall_schedule_scalar_bit_matches_family_word() {
        let (seed, level) = (0xfeed_beef, 2);
        for process in 0..3 {
            for cycle in 0..200u64 {
                let word = StallSchedule::family_mask(seed, level, process, cycle);
                for lane in [0u32, 1, 17, 63] {
                    let s = StallSchedule::new(seed, level, lane);
                    assert_eq!(s.stalled(process, cycle), (word >> lane) & 1 == 1);
                }
            }
        }
    }

    #[test]
    fn stall_schedule_density_follows_the_level() {
        for level in [1u32, 2, 3] {
            let draws = 1_000u64;
            let mut stall_bits = 0u64;
            for cycle in 0..draws {
                stall_bits +=
                    u64::from(StallSchedule::family_mask(7, level, 0, cycle).count_ones());
            }
            let expected = (draws * 64) as f64 / f64::from(1u32 << level);
            let measured = stall_bits as f64;
            assert!(
                (measured - expected).abs() < expected * 0.2,
                "level {level}: {measured} stall bits vs ~{expected}"
            );
        }
        assert_eq!(
            StallSchedule::family_mask(7, 0, 0, 3),
            0,
            "level 0 never stalls"
        );
    }

    /// A ring of `stages` stages with `rs` relay stations on the first edge.
    fn ring(stages: usize, rs: usize) -> SystemBuilder<u64> {
        let mut b = SystemBuilder::new();
        let ids: Vec<_> = (0..stages)
            .map(|i| b.add_process(Box::new(RingStage::new(&format!("s{i}")))))
            .collect();
        for i in 0..stages {
            let n = if i == 0 { rs } else { 0 };
            b.connect(format!("e{i}"), ids[i], 0, ids[(i + 1) % stages], 0, n);
        }
        b
    }

    fn scalar_outcome(
        stages: usize,
        rs: usize,
        stall: Option<StallSchedule>,
        goal: RunGoal,
        drain: Option<(u64, u64)>,
    ) -> Result<(u64, LidReport), SimError> {
        let mut sim = LidSimulator::new(ring(stages, rs), ShellConfig::strict())?;
        sim.set_trace_enabled(false);
        sim.set_stall_schedule(stall);
        let cycles_to_goal = match goal {
            RunGoal::UntilHalt {
                process,
                max_cycles,
            } => sim.run_until_halt(process, max_cycles)?,
            RunGoal::UntilFirings {
                process,
                target,
                max_cycles,
            } => sim.run_until_firings(process, target, max_cycles)?,
            RunGoal::ForCycles(cycles) => {
                sim.run_for(cycles)?;
                sim.cycles()
            }
        };
        if let Some((idle, extra)) = drain {
            sim.drain(idle, extra)?;
        }
        Ok((cycles_to_goal, sim.report()))
    }

    #[test]
    fn packed_ring_lanes_match_scalar_runs() {
        // 7 lanes: mixed relay-station budgets and stall lanes of one
        // family, against per-lane scalar oracles.
        let goal = RunGoal::UntilFirings {
            process: 0,
            target: 120,
            max_cycles: 50_000,
        };
        let drain = Some((8, 1_000));
        let stages = 3;
        let rs_budgets = [0usize, 1, 2, 4, 1, 0, 3];
        let lanes: Vec<LaneScenario> = rs_budgets
            .iter()
            .enumerate()
            .map(|(l, &rs)| LaneScenario {
                relay_stations: vec![rs, 0, 0],
                stall: Some(StallSchedule::new(99, 2, l as u32)),
            })
            .collect();
        let mut kernel =
            LaneLidSimulator::new(ring(stages, 0), &lanes, ShellConfig::strict()).unwrap();
        let outcomes = kernel.run(goal, drain);
        assert_eq!(outcomes.len(), rs_budgets.len());
        for (l, (outcome, &rs)) in outcomes.iter().zip(&rs_budgets).enumerate() {
            let outcome = outcome.as_ref().expect("ring lanes complete");
            let (cycles_to_goal, report) = scalar_outcome(
                stages,
                rs,
                Some(StallSchedule::new(99, 2, l as u32)),
                goal,
                drain,
            )
            .expect("scalar ring completes");
            assert_eq!(outcome.cycles_to_goal, cycles_to_goal, "lane {l}");
            assert_eq!(&outcome.report, &report, "lane {l}");
        }
    }

    #[test]
    fn lane_errors_match_scalar_errors() {
        // Budget small enough that no lane reaches 1000 firings.
        let goal = RunGoal::UntilFirings {
            process: 0,
            target: 1_000,
            max_cycles: 40,
        };
        let lanes = vec![
            LaneScenario {
                relay_stations: vec![0, 0],
                stall: None,
            },
            LaneScenario {
                relay_stations: vec![3, 0],
                stall: None,
            },
        ];
        let mut kernel = LaneLidSimulator::new(ring(2, 0), &lanes, ShellConfig::strict()).unwrap();
        for (l, outcome) in kernel.run(goal, None).iter().enumerate() {
            let err = outcome.as_ref().expect_err("budget exceeded");
            assert!(
                matches!(err, SimError::MaxCyclesExceeded { max_cycles: 40 }),
                "lane {l}: {err}"
            );
        }
    }

    #[test]
    fn halting_pipelines_follow_the_shared_halt_script() {
        use crate::testutil::{Forward, Terminator};
        use wp_core::SequenceSource;
        let build = || {
            let mut b = SystemBuilder::new();
            let src = b.add_process(Box::new(SequenceSource::new(
                "src",
                (1..=9u64).collect(),
                0,
            )));
            let fwd = b.add_process(Box::new(Forward::new("fwd")));
            let term = b.add_process(Box::new(Terminator::new("term")));
            b.connect("src_fwd", src, 0, fwd, 0, 0);
            b.connect("fwd_term", fwd, 0, term, 0, 0);
            b
        };
        let goal = RunGoal::UntilHalt {
            process: 0,
            max_cycles: 10_000,
        };
        let drain = Some((4, 100));
        let lanes: Vec<LaneScenario> = [(0usize, 0usize), (2, 1), (5, 0), (0, 4)]
            .iter()
            .map(|&(a, b)| LaneScenario {
                relay_stations: vec![a, b],
                stall: None,
            })
            .collect();
        let mut kernel = LaneLidSimulator::new(build(), &lanes, ShellConfig::strict()).unwrap();
        let outcomes = kernel.run(goal, drain);
        for (l, outcome) in outcomes.iter().enumerate() {
            let outcome = outcome.as_ref().expect("pipeline lanes complete");
            let (a, b) = [(0usize, 0usize), (2, 1), (5, 0), (0, 4)][l];
            let mut builder = build();
            builder.set_relay_stations(0, a);
            builder.set_relay_stations(1, b);
            let mut sim = LidSimulator::new(builder, ShellConfig::strict()).unwrap();
            sim.set_trace_enabled(false);
            let cycles_to_goal = sim.run_until_halt(0, 10_000).unwrap();
            sim.drain(4, 100).unwrap();
            assert_eq!(outcome.cycles_to_goal, cycles_to_goal, "lane {l}");
            assert_eq!(outcome.report, sim.report(), "lane {l}");
        }
    }

    #[test]
    fn batch_construction_rejects_bad_inputs() {
        assert!(matches!(
            LaneLidSimulator::<u64>::new(ring(2, 0), &[], ShellConfig::strict()),
            Err(SimError::InvalidSystem(_))
        ));
        let lane = |stall| LaneScenario {
            relay_stations: vec![0, 0],
            stall,
        };
        assert!(matches!(
            LaneLidSimulator::new(ring(2, 0), &[lane(None)], ShellConfig::oracle()),
            Err(SimError::InvalidSystem(_))
        ));
        assert!(matches!(
            LaneLidSimulator::new(
                ring(2, 0),
                &[LaneScenario {
                    relay_stations: vec![0],
                    stall: None
                }],
                ShellConfig::strict()
            ),
            Err(SimError::InvalidSystem(_))
        ));
        // Mixed families and mixed scheduled/unscheduled lanes.
        assert!(matches!(
            LaneLidSimulator::new(
                ring(2, 0),
                &[
                    lane(Some(StallSchedule::new(1, 1, 0))),
                    lane(Some(StallSchedule::new(2, 1, 1)))
                ],
                ShellConfig::strict()
            ),
            Err(SimError::InvalidSystem(_))
        ));
        assert!(matches!(
            LaneLidSimulator::new(
                ring(2, 0),
                &[lane(Some(StallSchedule::new(1, 1, 0))), lane(None)],
                ShellConfig::strict()
            ),
            Err(SimError::InvalidSystem(_))
        ));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn stall_schedule_rejects_lane_64() {
        let _ = StallSchedule::new(0, 1, 64);
    }

    /// Every lane of an extrapolated batch must match its scalar plain run
    /// bit for bit, while simulating only a fraction of the reported cycles.
    #[test]
    fn extrapolated_lanes_match_scalar_plain_runs_exactly() {
        let target = 50_000u64;
        let max_cycles = 1_000_000u64;
        let stages = 3;
        let rs_budgets = [0usize, 1, 2, 4, 7, 0, 3, 5];
        let lanes: Vec<LaneScenario> = rs_budgets
            .iter()
            .map(|&rs| LaneScenario {
                relay_stations: vec![rs, 0, 0],
                stall: None,
            })
            .collect();
        let mut kernel =
            LaneLidSimulator::new(ring(stages, 0), &lanes, ShellConfig::strict()).unwrap();
        let outcomes = kernel.run_until_firings_extrapolated(0, target, max_cycles);
        assert_eq!(outcomes.len(), rs_budgets.len());
        for (l, (outcome, &rs)) in outcomes.iter().zip(&rs_budgets).enumerate() {
            let run = outcome.as_ref().expect("ring lanes complete");
            let mut scalar = LidSimulator::new(ring(stages, rs), ShellConfig::strict()).unwrap();
            scalar.set_trace_enabled(false);
            scalar.run_until_firings(0, target, max_cycles).unwrap();
            assert_eq!(run.report, scalar.report(), "lane {l}");
            assert!(run.extrapolated, "lane {l} should have extrapolated");
            assert!(
                run.simulated_cycles * 10 <= run.report.cycles,
                "lane {l}: simulated {} of {} cycles",
                run.simulated_cycles,
                run.report.cycles
            );
        }
    }

    /// A stalled batch cannot extrapolate (the schedule reads the absolute
    /// cycle), but the oracle entry point still reproduces the plain
    /// kernel's outcomes exactly.
    #[test]
    fn stalled_batches_fall_back_to_plain_lane_simulation() {
        let target = 300u64;
        let lanes: Vec<LaneScenario> = (0..4u32)
            .map(|l| LaneScenario {
                relay_stations: vec![l as usize, 0],
                stall: Some(StallSchedule::new(42, 2, l)),
            })
            .collect();
        let mut kernel = LaneLidSimulator::new(ring(2, 0), &lanes, ShellConfig::strict()).unwrap();
        let outcomes = kernel.run_until_firings_extrapolated(0, target, 100_000);
        for (l, outcome) in outcomes.iter().enumerate() {
            let run = outcome.as_ref().expect("stalled lanes complete");
            assert!(!run.extrapolated, "lane {l} must not extrapolate");
            assert_eq!(run.simulated_cycles, run.report.cycles, "lane {l}");
            let mut scalar = LidSimulator::new(ring(2, l), ShellConfig::strict()).unwrap();
            scalar.set_trace_enabled(false);
            scalar.set_stall_schedule(Some(StallSchedule::new(42, 2, l as u32)));
            scalar.run_until_firings(0, target, 100_000).unwrap();
            assert_eq!(run.report, scalar.report(), "lane {l}");
        }
    }

    /// The extrapolated cycle-budget error is exact per lane: a budget one
    /// cycle short errs, the exact goal cycle succeeds — even though the
    /// lanes share one clock and decide at different cycles.
    #[test]
    fn extrapolated_budget_errors_are_exact_per_lane() {
        let target = 2_000u64;
        let budgets = [0usize, 2];
        let goal_cycles: Vec<u64> = budgets
            .iter()
            .map(|&rs| {
                let mut scalar = LidSimulator::new(ring(3, rs), ShellConfig::strict()).unwrap();
                scalar.set_trace_enabled(false);
                scalar.run_until_firings(0, target, 1_000_000).unwrap()
            })
            .collect();
        let lanes: Vec<LaneScenario> = budgets
            .iter()
            .map(|&rs| LaneScenario {
                relay_stations: vec![rs, 0, 0],
                stall: None,
            })
            .collect();
        // Budget exactly the slower lane's goal cycle: the slow lane
        // succeeds on the nose, the fast one long before.
        let max = *goal_cycles.iter().max().unwrap();
        let mut kernel = LaneLidSimulator::new(ring(3, 0), &lanes, ShellConfig::strict()).unwrap();
        for (l, outcome) in kernel
            .run_until_firings_extrapolated(0, target, max)
            .iter()
            .enumerate()
        {
            let run = outcome.as_ref().expect("budget is sufficient");
            assert_eq!(run.report.cycles, goal_cycles[l], "lane {l}");
        }
        // One cycle short: the slower lane must err, the faster still pass.
        let mut kernel = LaneLidSimulator::new(ring(3, 0), &lanes, ShellConfig::strict()).unwrap();
        let outcomes = kernel.run_until_firings_extrapolated(0, target, max - 1);
        let slow = goal_cycles
            .iter()
            .position(|&g| g == max)
            .expect("one lane is slowest");
        for (l, outcome) in outcomes.iter().enumerate() {
            if l == slow {
                let err = outcome.as_ref().expect_err("one cycle short");
                assert!(
                    matches!(err, SimError::MaxCyclesExceeded { .. }),
                    "lane {l}: {err}"
                );
            } else {
                assert_eq!(
                    outcome.as_ref().expect("fast lane fits").report.cycles,
                    goal_cycles[l],
                    "lane {l}"
                );
            }
        }
    }
}
