//! Property-based tests of the processor substrate: instruction encoding,
//! the assembler, and ISS-vs-SoC agreement on randomly generated straight-line
//! programs.

use proptest::prelude::*;

use wp_core::SyncPolicy;
use wp_proc::isa::{decode, encode, AluOp, BranchKind, Instr};
use wp_proc::{run_golden_soc, run_wp_soc, Iss, Link, Organization, RsConfig, Workload};

fn reg() -> impl Strategy<Value = u8> {
    0u8..16
}

fn alu_op() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::And),
        Just(AluOp::Or),
        Just(AluOp::Xor),
        Just(AluOp::Slt),
        Just(AluOp::Mul),
        Just(AluOp::Shl),
        Just(AluOp::Shr),
    ]
}

fn branch_kind() -> impl Strategy<Value = BranchKind> {
    prop_oneof![
        Just(BranchKind::Eq),
        Just(BranchKind::Ne),
        Just(BranchKind::Lt),
        Just(BranchKind::Ge),
    ]
}

fn any_instr() -> impl Strategy<Value = Instr> {
    prop_oneof![
        (alu_op(), reg(), reg(), reg()).prop_map(|(op, rd, rs1, rs2)| Instr::Alu {
            op,
            rd,
            rs1,
            rs2
        }),
        (alu_op(), reg(), reg(), -8192i32..8191).prop_map(|(op, rd, rs1, imm)| Instr::AluImm {
            op,
            rd,
            rs1,
            imm
        }),
        (reg(), reg(), -8192i32..8191).prop_map(|(rd, rs1, imm)| Instr::Load { rd, rs1, imm }),
        (reg(), reg(), -8192i32..8191).prop_map(|(rs2, rs1, imm)| Instr::Store { rs2, rs1, imm }),
        (branch_kind(), reg(), reg(), -8192i32..8191).prop_map(|(kind, rs1, rs2, offset)| {
            Instr::Branch {
                kind,
                rs1,
                rs2,
                offset,
            }
        }),
        (0u32..1_000_000).prop_map(|target| Instr::Jump { target }),
        Just(Instr::Nop),
        Just(Instr::Halt),
    ]
}

proptest! {
    #[test]
    fn instruction_encoding_roundtrips(instr in any_instr()) {
        let word = encode(instr).expect("generated instructions stay in range");
        prop_assert_eq!(decode(word).expect("decodes"), instr);
    }

    #[test]
    fn assembler_never_panics_on_arbitrary_text(text in "[ -~\n]{0,200}") {
        // Arbitrary printable input must produce Ok or a located error,
        // never a panic.
        let _ = wp_proc::assemble(&text);
    }

    #[test]
    fn display_and_assemble_roundtrip_for_non_control_flow(
        instrs in prop::collection::vec(
            prop_oneof![
                (alu_op(), reg(), reg(), reg())
                    .prop_map(|(op, rd, rs1, rs2)| Instr::Alu { op, rd, rs1, rs2 }),
                (alu_op(), reg(), reg(), -100i32..100)
                    .prop_map(|(op, rd, rs1, imm)| Instr::AluImm { op, rd, rs1, imm }),
                (reg(), reg(), -100i32..100).prop_map(|(rd, rs1, imm)| Instr::Load { rd, rs1, imm }),
                (reg(), reg(), -100i32..100).prop_map(|(rs2, rs1, imm)| Instr::Store { rs2, rs1, imm }),
                Just(Instr::Nop),
            ],
            1..20,
        )
    ) {
        // Pretty-print the program and assemble it back.
        let text: String = instrs
            .iter()
            .map(|i| format!("{i}\n"))
            .collect();
        let assembled = wp_proc::assemble(&text).expect("printed program assembles");
        prop_assert_eq!(assembled, instrs);
    }
}

/// Generates a random straight-line program (no branches) whose loads and
/// stores stay inside a small data memory, terminated by `halt`.
fn straight_line_program() -> impl Strategy<Value = Vec<Instr>> {
    let step = prop_oneof![
        (alu_op(), 1u8..8, reg(), reg()).prop_map(|(op, rd, rs1, rs2)| Instr::Alu {
            op,
            rd,
            rs1,
            rs2
        }),
        (1u8..8, reg(), 0i32..8).prop_map(|(rd, _rs1, imm)| Instr::AluImm {
            op: AluOp::Add,
            rd,
            rs1: 0, // always r0: keeps addresses small and in range
            imm,
        }),
        (1u8..8, 0i32..8).prop_map(|(rd, imm)| Instr::Load { rd, rs1: 0, imm }),
        (reg(), 0i32..8).prop_map(|(rs2, imm)| Instr::Store { rs2, rs1: 0, imm }),
        Just(Instr::Nop),
    ];
    prop::collection::vec(step, 1..25).prop_map(|mut v| {
        v.push(Instr::Halt);
        v
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn golden_soc_matches_the_iss_on_random_programs(
        program in straight_line_program(),
        memory in prop::collection::vec(-100i64..100, 8..9),
    ) {
        let iss_result = Iss::new(program.clone(), memory.clone())
            .run(100_000)
            .expect("straight-line program terminates");
        let workload = Workload {
            name: "random".to_string(),
            source: String::new(),
            program,
            memory,
            expected_memory: iss_result.memory.clone(),
        };
        for org in [Organization::Multicycle, Organization::Pipelined] {
            let golden = run_golden_soc(&workload, org, 500_000).expect("golden run");
            prop_assert_eq!(&golden.memory, &iss_result.memory);
        }
    }

    #[test]
    fn wire_pipelined_soc_matches_the_iss_on_random_programs(
        program in straight_line_program(),
        memory in prop::collection::vec(-100i64..100, 8..9),
    ) {
        let iss_result = Iss::new(program.clone(), memory.clone())
            .run(100_000)
            .expect("straight-line program terminates");
        let workload = Workload {
            name: "random".to_string(),
            source: String::new(),
            program,
            memory,
            expected_memory: iss_result.memory.clone(),
        };
        let rs = RsConfig::uniform(1, &[Link::CuIc]);
        for policy in [SyncPolicy::Strict, SyncPolicy::Oracle] {
            let wp = run_wp_soc(&workload, Organization::Pipelined, &rs, policy, 1_000_000)
                .expect("wp run");
            prop_assert_eq!(&wp.memory, &iss_result.memory);
        }
    }
}
