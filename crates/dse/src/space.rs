//! The relay-assignment search space and the analytic candidate evaluator.

use wp_netlist::{McrSolver, Netlist};
use wp_spec::NetlistSpec;

/// The design space of one netlist: every per-channel relay-station
/// assignment in the box `[0, cap]^channels`, scored against the fixed
/// topology and the per-channel wire latencies.
///
/// Channel order is declaration order, which
/// `wp_spec::NetlistSpec::to_netlist` guarantees equals the edge insertion
/// order — so an assignment vector indexes channels and edges
/// interchangeably.
#[derive(Debug, Clone)]
pub struct SearchSpace {
    net: Netlist,
    latencies: Vec<f64>,
    cap: usize,
    reference_period: f64,
}

/// The analytic score of one assignment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Score {
    /// Worst-loop cycle throughput `m/(m+n)` (exact MCR solve).
    pub cycle_throughput: f64,
    /// Fastest feasible clock period: every wire segment must fit in one
    /// period, and the block logic pins the floor at the reference period.
    pub period: f64,
    /// Effective throughput in firings per time unit:
    /// `cycle_throughput / period`.
    pub effective: f64,
}

impl SearchSpace {
    /// Frames the search space of `spec`: per-channel latencies via
    /// [`wp_spec::NetlistSpec::wire_latencies`]`(reference_period)`, relay
    /// counts ranging over `0..=cap` per channel.
    ///
    /// # Panics
    ///
    /// Panics when `reference_period` is not positive (propagated) or the
    /// spec declares no channels.
    pub fn from_spec(spec: &NetlistSpec, cap: usize, reference_period: f64) -> Self {
        let latencies = spec.wire_latencies(reference_period);
        assert!(
            !latencies.is_empty(),
            "a design space needs at least one channel"
        );
        Self {
            net: spec.to_netlist(),
            latencies,
            cap,
            reference_period,
        }
    }

    /// Number of channels (the assignment vector length).
    pub fn channels(&self) -> usize {
        self.latencies.len()
    }

    /// Per-channel relay-station cap (inclusive).
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// The reference (logic-limited) clock period: the floor of
    /// [`SearchSpace::clock_period`].
    pub fn reference_period(&self) -> f64 {
        self.reference_period
    }

    /// The per-channel wire latencies.
    pub fn latencies(&self) -> &[f64] {
        &self.latencies
    }

    /// The base topology candidates are scored against.
    pub fn netlist(&self) -> &Netlist {
        &self.net
    }

    /// Number of assignments in the space: `(cap + 1)^channels`, saturating
    /// at `u128::MAX` (a space that large is never enumerated anyway).
    pub fn size(&self) -> u128 {
        let radix = self.cap as u128 + 1;
        let mut size: u128 = 1;
        for _ in 0..self.channels() {
            size = size.saturating_mul(radix);
        }
        size
    }

    /// Decodes a flat index in `0..size()` into its mixed-radix assignment
    /// (channel 0 is the least-significant digit).
    ///
    /// # Panics
    ///
    /// Panics when `out.len()` differs from the channel count.
    pub fn decode(&self, flat: u128, out: &mut [usize]) {
        assert_eq!(out.len(), self.channels());
        let radix = self.cap as u128 + 1;
        let mut rest = flat;
        for slot in out.iter_mut() {
            *slot = (rest % radix) as usize;
            rest /= radix;
        }
        debug_assert_eq!(rest, 0, "flat index out of range");
    }

    /// The fastest feasible clock period of an assignment: each channel's
    /// wire is split into `rᵢ + 1` segments, every segment must fit in one
    /// period, and the reference period is the logic floor.
    pub fn clock_period(&self, assignment: &[usize]) -> f64 {
        let mut period = self.reference_period;
        for (&rs, &latency) in assignment.iter().zip(&self.latencies) {
            let segment = latency / (rs + 1) as f64;
            if segment > period {
                period = segment;
            }
        }
        period
    }
}

/// Reusable per-worker scoring workspace: one scratch [`Netlist`] and one
/// incremental [`McrSolver`], built once per topology so every candidate
/// costs a single allocation-free Karp re-solve.
#[derive(Debug)]
pub struct Evaluator {
    scratch: Netlist,
    solver: McrSolver,
    scored: u64,
}

impl Evaluator {
    /// Builds the workspace for one search space.
    pub fn new(space: &SearchSpace) -> Self {
        let scratch = space.net.clone();
        let solver = McrSolver::new(&scratch);
        Self {
            scratch,
            solver,
            scored: 0,
        }
    }

    /// Scores one assignment analytically: incremental MCR re-solve for the
    /// cycle throughput, clock law for the period, their ratio for the
    /// effective throughput.  Exact rational comparisons inside the solver
    /// make the returned floats bit-identical across workers and runs.
    pub fn score(&mut self, space: &SearchSpace, assignment: &[usize]) -> Score {
        self.scratch.apply_relay_station_assignment(assignment);
        let cycle_throughput = self.solver.solve(&self.scratch);
        let period = space.clock_period(assignment);
        self.scored += 1;
        Score {
            cycle_throughput,
            period,
            effective: cycle_throughput / period,
        }
    }

    /// Total candidates scored through this workspace.
    pub fn scored(&self) -> u64 {
        self.scored
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wp_gen::{generate, GenConfig};
    use wp_netlist::ThroughputModel;

    fn space(seed: u64, cap: usize) -> (SearchSpace, wp_spec::NetlistSpec) {
        let mut spec = generate(&GenConfig::with_seed(seed));
        spec.insert_relays(1.0);
        (SearchSpace::from_spec(&spec, cap, 1.0), spec)
    }

    #[test]
    fn size_and_decode_round_trip() {
        let (space, _) = space(1, 2);
        let m = space.channels();
        assert_eq!(space.size(), 3u128.pow(m as u32));
        let mut out = vec![0; m];
        space.decode(0, &mut out);
        assert_eq!(out, vec![0; m]);
        space.decode(space.size() - 1, &mut out);
        assert_eq!(out, vec![2; m]);
        // The flat order enumerates channel 0 fastest.
        space.decode(5, &mut out);
        assert_eq!(&out[..2], &[2, 1]);
    }

    #[test]
    fn clock_period_follows_the_segment_law() {
        let (space, _) = space(1, 3);
        let zero = vec![0; space.channels()];
        let worst: f64 = space.latencies().iter().fold(0.0, |a, &b| a.max(b));
        assert_eq!(space.clock_period(&zero), worst.max(1.0));
        // Enough stations everywhere pins the clock at the logic floor.
        let full = vec![31; space.channels()];
        assert_eq!(space.clock_period(&full), 1.0);
    }

    #[test]
    fn evaluator_matches_the_throughput_model() {
        let (space, spec) = space(7, 2);
        let mut eval = Evaluator::new(&space);
        let mut assignment = spec.relay_assignment();
        for step in 0..assignment.len() {
            assignment[step] = (step * 2 + 1) % 3;
            let score = eval.score(&space, &assignment);
            let mut check = spec.clone();
            check.apply_relay_assignment(&assignment);
            let expected = ThroughputModel::Exact.predict(&check.to_netlist());
            assert_eq!(score.cycle_throughput.to_bits(), expected.to_bits());
            assert_eq!(
                score.effective.to_bits(),
                (expected / space.clock_period(&assignment)).to_bits()
            );
        }
        assert_eq!(eval.scored(), spec.channels.len() as u64);
    }
}
