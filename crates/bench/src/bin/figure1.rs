//! Reproduces Figure 1 of the paper: the case-study netlist (five blocks and
//! their channels) together with its loop inventory and the per-loop
//! throughput law.
//!
//! Besides the analytic law, the per-link table now also *measures* the WP1
//! throughput of every single-link configuration — a 10-scenario
//! `wp_sim::SweepRunner` sweep of the full processor.  The scheduler is
//! controlled with `--workers N` and `--batch N`, and the measured sweep
//! can be sharded across worker processes with `--shards N` — or across
//! machines with `--hosts hosts.conf` (worker mode: `--shard i/N` /
//! `--emit-ndjson`), merging to byte-identical output.

use wp_bench::{
    predict_wp1_throughput, soc_oracle_scenario, soc_scenario, sort_workload, LaneMode,
    ScenarioWiring, ShardArgs, SweepArgs, MAX_CYCLES,
};
use wp_core::SyncPolicy;
use wp_netlist::{loop_inventory, to_dot, ThroughputModel, DEFAULT_MAX_LOOPS};
use wp_proc::{build_soc, run_golden_soc, Link, Organization, RsConfig, Workload};
use wp_sim::Scenario;

/// The per-link WP1 scenarios, in `Link::ALL` submission order (the global
/// row numbering shared by the sharding parent and its workers).  With
/// `--lanes on|auto` every scenario carries a lane key; plainly-simulated
/// scenarios read the memory back after the run, so the sweep demotes them
/// to the scalar kernel and the printed table is mode-independent.
///
/// `oracle_target` is `Some(golden_cycles)` under `--oracle on|auto`: each
/// run is then built as its extrapolating twin (`soc_oracle_scenario`,
/// with the halt goal re-expressed as a firing goal), which reports the
/// same cycle count while simulating orders of magnitude fewer cycles.
fn link_scenarios(
    workload: &Workload,
    lanes: LaneMode,
    oracle_target: Option<u64>,
) -> Vec<Scenario<wp_proc::Msg, wp_proc::SocState>> {
    let wiring = ScenarioWiring::new().lane_key(lanes, "figure1/wp1");
    Link::ALL
        .iter()
        .map(|&link| {
            let rs = RsConfig::single(link, 1);
            let scenario = match oracle_target {
                Some(target) => {
                    soc_oracle_scenario(link.label(), workload, Organization::Pipelined, rs, target)
                }
                None => soc_scenario(
                    link.label(),
                    workload,
                    Organization::Pipelined,
                    rs,
                    SyncPolicy::Strict,
                ),
            };
            wiring.wire(scenario)
        })
        .collect()
}

/// Prints the analytic half: the DOT netlist, the loop inventory and the
/// system throughput predicted by the law.
fn print_analytics(workload: &Workload) {
    let builder = build_soc(workload, Organization::Pipelined, &RsConfig::ideal());
    let net = builder.to_netlist();

    println!("Figure 1: case-study netlist (Graphviz DOT)\n");
    println!("{}", to_dot(&net, "figure1"));

    println!("Netlist loops and the m/(m+n) law with 1 RS on every link (no CU-IC):");
    let builder = build_soc(
        workload,
        Organization::Pipelined,
        &RsConfig::uniform(1, &[Link::CuIc]),
    );
    let net = builder.to_netlist();
    let analysis = ThroughputModel::Enumerated {
        max_loops: DEFAULT_MAX_LOOPS,
    }
    .analyze(&net);
    if !analysis.is_exhaustive() {
        eprintln!(
            "warning: loop inventory truncated at {DEFAULT_MAX_LOOPS} loops; \
             the printed system throughput comes from the exact solver"
        );
    }
    println!("{}", loop_inventory(&net, &analysis));
    println!(
        "worst-loop (system) throughput predicted for WP1: {:.3}",
        ThroughputModel::Exact.predict(&net)
    );
}

/// Prints the measured per-link table from the merged `(link, cycles)`
/// rows.
fn print_link_table(workload: &Workload, golden_cycles: u64, cycles_to_goal: &[u64]) {
    println!("\nPer-link worst loop (1 RS on that link only):");
    println!(
        "  {:<8} {:>14} {:>13}",
        "link", "predicted WP1", "measured WP1"
    );
    for (link, &cycles) in Link::ALL.iter().zip(cycles_to_goal) {
        let predicted = predict_wp1_throughput(
            workload,
            Organization::Pipelined,
            &RsConfig::single(*link, 1),
        );
        let measured = golden_cycles as f64 / cycles as f64;
        println!("  {:<8} {predicted:>14.3} {measured:>13.3}", link.label());
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = sort_workload();
    let sweep = SweepArgs::from_env().unwrap_or_else(|e| e.exit());
    let shard = ShardArgs::from_env().unwrap_or_else(|e| e.exit());
    let n = Link::ALL.len();

    if shard.emit_ndjson {
        // Worker mode: run only this shard's link range, one NDJSON record
        // per link.  Under --oracle the worker computes the golden
        // denominator itself (it is the firing target of every converted
        // scenario, and workers never receive the parent's).
        let oracle_target = sweep
            .oracle
            .converts_rows()
            .then(|| run_golden_soc(&workload, Organization::Pipelined, MAX_CYCLES))
            .transpose()?
            .map(|golden| golden.cycles);
        let range = shard.worker_range(n);
        let outcomes = sweep.runner().run_range(
            link_scenarios(&workload, sweep.lanes, oracle_target),
            range.clone(),
        );
        for (index, outcome) in range.zip(outcomes) {
            let outcome = outcome?;
            println!(
                "{{\"index\": {index}, \"link\": {}, \"cycles_to_goal\": {}}}",
                wp_bench::json_string(Link::ALL[index].label()),
                outcome.cycles_to_goal
            );
        }
        return Ok(());
    }

    print_analytics(&workload);
    let golden = run_golden_soc(&workload, Organization::Pipelined, MAX_CYCLES)?;
    let oracle_target = sweep.oracle.converts_rows().then_some(golden.cycles);

    let cycles: Vec<u64> = if shard.is_parent() {
        let records = shard.run_sharded_rows(n, "per-link run", None)?;
        records
            .iter()
            .enumerate()
            .map(|(i, record)| {
                record
                    .require_u64("cycles_to_goal")
                    .map_err(|e| format!("worker record for link {i}: {e}").into())
            })
            .collect::<Result<_, Box<dyn std::error::Error>>>()?
    } else {
        let (outcomes, stats) =
            sweep
                .runner()
                .run_with_stats(link_scenarios(&workload, sweep.lanes, oracle_target));
        if oracle_target.is_some() {
            let simulated = stats.oracle_simulated_cycles;
            let total = simulated + stats.oracle_extrapolated_cycles;
            eprintln!(
                "oracle: simulated {simulated} of {total} WP1 cycles, {} extrapolation(s), \
                 {} fallback(s)",
                stats.oracle_extrapolations, stats.oracle_fallbacks,
            );
        }
        outcomes
            .into_iter()
            .map(|outcome| outcome.map(|o| o.cycles_to_goal))
            .collect::<Result<_, _>>()?
    };
    print_link_table(&workload, golden.cycles, &cycles);
    Ok(())
}
