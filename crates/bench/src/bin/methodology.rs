//! The end-to-end "new system design methodology": floorplan the five blocks,
//! budget relay stations from the wire delays, predict the throughput with
//! the loop law, and verify by simulating both WP1 and WP2 implementations of
//! the extraction-sort workload.

use wp_bench::{predict_wp1_throughput, sort_workload, MAX_CYCLES};
use wp_core::SyncPolicy;
use wp_floorplan::{anneal, AnnealConfig, Block, Floorplan, WireModel};
use wp_proc::{build_soc, run_golden_soc, run_wp_soc, Link, Organization, RsConfig};

fn main() {
    let workload = sort_workload();
    let organization = Organization::Pipelined;

    // 1. The physical view: five blocks on a 12x12 mm die, 1 ns clock.
    let mut fp = Floorplan::new(12.0, 12.0);
    fp.add_block(Block::new("CU", 2.0, 2.0));
    fp.add_block(Block::new("IC", 4.0, 4.0));
    fp.add_block(Block::new("RF", 2.0, 3.0));
    fp.add_block(Block::new("ALU", 3.0, 3.0));
    fp.add_block(Block::new("DC", 4.0, 4.0));
    let model = WireModel::nm130(1.0);

    let builder = build_soc(&workload, organization, &RsConfig::ideal());
    let net = builder.to_netlist();

    // 2. Throughput-aware placement.
    let result = anneal(&fp, &net, &model, &AnnealConfig::default());
    println!("Annealed placement:");
    for (i, block) in fp.blocks().iter().enumerate() {
        let (x, y) = result.placement.position(i);
        println!("  {:<4} at ({x:5.2}, {y:5.2}) mm", block.name());
    }
    println!(
        "total wire length = {:.1} mm, predicted WP1 throughput = {:.3}\n",
        result.wire_length, result.predicted_throughput
    );

    // 3. Relay-station budget per link.
    let budget = fp.relay_station_budget(&net, &result.placement, &model);
    let mut rs = RsConfig::ideal();
    for link in Link::ALL {
        let needed = link
            .channel_names()
            .iter()
            .filter_map(|name| net.find_edge(name))
            .map(|e| budget[e.index()])
            .max()
            .unwrap_or(0);
        rs.set(link, needed);
        println!("link {:<8} -> {needed} relay station(s)", link.label());
    }

    // 4. Predict and simulate.
    let predicted = predict_wp1_throughput(&workload, organization, &rs);
    let golden = run_golden_soc(&workload, organization, MAX_CYCLES).expect("golden runs");
    let wp1 =
        run_wp_soc(&workload, organization, &rs, SyncPolicy::Strict, MAX_CYCLES).expect("WP1 runs");
    let wp2 =
        run_wp_soc(&workload, organization, &rs, SyncPolicy::Oracle, MAX_CYCLES).expect("WP2 runs");
    println!("\ngolden cycles = {}", golden.cycles);
    println!(
        "WP1: cycles = {}, Th = {:.3} (law predicts {predicted:.3})",
        wp1.cycles,
        wp1.throughput_vs(golden.cycles)
    );
    println!(
        "WP2: cycles = {}, Th = {:.3}",
        wp2.cycles,
        wp2.throughput_vs(golden.cycles)
    );
}
