//! CU — the control unit, in multicycle and pipelined flavours.
//!
//! The control unit sequences instruction execution across the other four
//! blocks by sending per-firing commands.  The *multicycle* organisation
//! executes one instruction through five non-overlapped phases (instruction
//! fetch, decode and contextual operand fetch, execution, memory access,
//! write-back), so the CU↔IC loop is exercised only once every five firings —
//! the property the paper highlights when explaining why WP2 helps the most
//! there.  The *pipelined* organisation overlaps the fetch of the next
//! instruction with the execution of the current one (different loops are
//! exercised in the same clock cycle), lowering the CPI to three for
//! arithmetic and memory instructions.

use wp_core::{PortSet, Process};

use crate::isa::{decode, AluOp, BranchKind, Instr};
use crate::msg::{AluCmd, MemKind, Msg, RegCmd};

/// Input port fed by the instruction memory.
pub const IN_IC: usize = 0;
/// Input port fed by the ALU (branch flags).
pub const IN_ALU: usize = 1;
/// Output port towards the instruction memory (fetch requests).
pub const OUT_IC: usize = 0;
/// Output port towards the register file (register commands).
pub const OUT_RF: usize = 1;
/// Output port towards the ALU (operation commands).
pub const OUT_ALU: usize = 2;
/// Output port towards the data memory (memory commands).
pub const OUT_DC: usize = 3;

/// Processor organisation evaluated in the paper's case study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Organization {
    /// Five non-overlapped phases per instruction.
    Multicycle,
    /// Fetch of the next instruction overlapped with execution of the
    /// current one.
    Pipelined,
}

impl Organization {
    /// Short label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            Organization::Multicycle => "multicycle",
            Organization::Pipelined => "pipelined",
        }
    }
}

/// The commands an instruction sends to the datapath blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct IssueBundle {
    reg: Msg,
    alu: Msg,
    mem: Msg,
    branch: Option<(BranchKind, i32)>,
    next_pc: NextPc,
}

/// How the next program counter is determined.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NextPc {
    /// Sequential (`pc + 1`).
    Sequential,
    /// Absolute jump target, known at decode time.
    Jump(u32),
    /// Decided at resolve time from the ALU flags.
    Branch,
    /// The processor halts.
    Halt,
}

/// Derives the command bundle of one instruction.
fn decode_issue(instr: Instr) -> IssueBundle {
    let bundle = |reg, alu, mem, branch, next_pc| IssueBundle {
        reg,
        alu,
        mem,
        branch,
        next_pc,
    };
    match instr {
        Instr::Alu { op, rd, rs1, rs2 } => bundle(
            Msg::RegCmd(RegCmd {
                rs1,
                rs2,
                store_reg: None,
                expect_alu_wb: true,
                expect_load_wb: false,
            }),
            Msg::AluCmd(AluCmd {
                op,
                dst: rd,
                imm: None,
                writes_reg: true,
                to_mem: false,
            }),
            Msg::MemCmd(MemKind::None),
            None,
            NextPc::Sequential,
        ),
        Instr::AluImm { op, rd, rs1, imm } => bundle(
            Msg::RegCmd(RegCmd {
                rs1,
                rs2: 0,
                store_reg: None,
                expect_alu_wb: true,
                expect_load_wb: false,
            }),
            Msg::AluCmd(AluCmd {
                op,
                dst: rd,
                imm: Some(i64::from(imm)),
                writes_reg: true,
                to_mem: false,
            }),
            Msg::MemCmd(MemKind::None),
            None,
            NextPc::Sequential,
        ),
        Instr::Load { rd, rs1, imm } => bundle(
            Msg::RegCmd(RegCmd {
                rs1,
                rs2: 0,
                store_reg: None,
                expect_alu_wb: false,
                expect_load_wb: true,
            }),
            Msg::AluCmd(AluCmd {
                op: AluOp::Add,
                dst: rd,
                imm: Some(i64::from(imm)),
                writes_reg: false,
                to_mem: true,
            }),
            Msg::MemCmd(MemKind::Read { dst: rd }),
            None,
            NextPc::Sequential,
        ),
        Instr::Store { rs2, rs1, imm } => bundle(
            Msg::RegCmd(RegCmd {
                rs1,
                rs2: 0,
                store_reg: Some(rs2),
                expect_alu_wb: false,
                expect_load_wb: false,
            }),
            Msg::AluCmd(AluCmd {
                op: AluOp::Add,
                dst: 0,
                imm: Some(i64::from(imm)),
                writes_reg: false,
                to_mem: true,
            }),
            Msg::MemCmd(MemKind::Write),
            None,
            NextPc::Sequential,
        ),
        Instr::Branch {
            kind,
            rs1,
            rs2,
            offset,
        } => bundle(
            Msg::RegCmd(RegCmd {
                rs1,
                rs2,
                store_reg: None,
                expect_alu_wb: false,
                expect_load_wb: false,
            }),
            Msg::AluCmd(AluCmd {
                op: AluOp::Sub,
                dst: 0,
                imm: None,
                writes_reg: false,
                to_mem: false,
            }),
            Msg::MemCmd(MemKind::None),
            Some((kind, offset)),
            NextPc::Branch,
        ),
        Instr::Jump { target } => bundle(
            Msg::Bubble,
            Msg::Bubble,
            Msg::Bubble,
            None,
            NextPc::Jump(target),
        ),
        Instr::Nop => bundle(
            Msg::Bubble,
            Msg::Bubble,
            Msg::Bubble,
            None,
            NextPc::Sequential,
        ),
        Instr::Halt => bundle(Msg::Bubble, Msg::Bubble, Msg::Bubble, None, NextPc::Halt),
    }
}

/// Execution phase of the control unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// The fetch request is on the wire; bookkeeping firing.
    Fetch,
    /// The instruction word is consumed and decoded.
    Decode,
    /// The datapath commands are on the wires.
    Issue,
    /// The ALU is executing (multicycle) / waiting (pipelined branch).
    Exec,
    /// The outcome is resolved (flags consumed for branches), the next fetch
    /// is emitted.
    Resolve,
}

/// The control unit block.
#[derive(Debug, Clone)]
pub struct ControlUnit {
    organization: Organization,
    pc: u32,
    phase: Phase,
    current: Option<IssueBundle>,
    halted: bool,
    out_fetch: Msg,
    out_rf: Msg,
    out_alu: Msg,
    out_dc: Msg,
    instructions: u64,
    branches: u64,
    taken_branches: u64,
}

impl ControlUnit {
    /// Creates a control unit starting execution at address 0.
    pub fn new(organization: Organization) -> Self {
        Self {
            organization,
            pc: 0,
            phase: Phase::Fetch,
            current: None,
            halted: false,
            out_fetch: Msg::Fetch { addr: 0 },
            out_rf: Msg::Bubble,
            out_alu: Msg::Bubble,
            out_dc: Msg::Bubble,
            instructions: 0,
            branches: 0,
            taken_branches: 0,
        }
    }

    /// The organisation this control unit implements.
    pub fn organization(&self) -> Organization {
        self.organization
    }

    /// Number of instructions decoded so far.
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// Number of conditional branches decoded / taken so far.
    pub fn branch_stats(&self) -> (u64, u64) {
        (self.branches, self.taken_branches)
    }

    /// Current program counter.
    pub fn pc(&self) -> u32 {
        self.pc
    }

    fn clear_command_outputs(&mut self) {
        self.out_rf = Msg::Bubble;
        self.out_alu = Msg::Bubble;
        self.out_dc = Msg::Bubble;
    }

    fn emit_fetch(&mut self) {
        self.out_fetch = Msg::Fetch { addr: self.pc };
        self.clear_command_outputs();
        self.phase = Phase::Fetch;
    }

    /// Handles the decode firing: consumes the instruction word and sets up
    /// the command outputs / next phase.
    fn decode_firing(&mut self, word: Option<u32>) {
        self.out_fetch = Msg::Bubble;
        let Some(word) = word else {
            debug_assert!(false, "instruction word missing at the decode firing");
            self.clear_command_outputs();
            return;
        };
        let instr = decode(word).unwrap_or(Instr::Halt);
        self.instructions += 1;
        let bundle = decode_issue(instr);
        if bundle.branch.is_some() {
            self.branches += 1;
        }
        match bundle.next_pc {
            NextPc::Halt => {
                self.halted = true;
                self.clear_command_outputs();
            }
            NextPc::Jump(target) => {
                self.pc = target;
                self.emit_fetch();
            }
            NextPc::Sequential if bundle.reg.is_bubble() => {
                // Nop: nothing to issue, go straight to the next fetch.
                self.pc = self.pc.wrapping_add(1);
                self.emit_fetch();
            }
            NextPc::Sequential | NextPc::Branch => {
                self.out_rf = bundle.reg;
                self.out_alu = bundle.alu;
                self.out_dc = bundle.mem;
                self.current = Some(bundle);
                self.phase = Phase::Issue;
            }
        }
    }

    /// Handles the issue firing (commands are on the wires during this
    /// cycle).
    fn issue_firing(&mut self) {
        self.clear_command_outputs();
        let is_branch = self
            .current
            .as_ref()
            .is_some_and(|b| b.next_pc == NextPc::Branch);
        match (self.organization, is_branch) {
            (Organization::Pipelined, false) => {
                // Overlap: the next fetch goes out while the datapath works.
                self.pc = self.pc.wrapping_add(1);
                self.current = None;
                self.emit_fetch();
            }
            _ => self.phase = Phase::Exec,
        }
    }

    /// Handles the resolve firing: consumes flags for branches and emits the
    /// next fetch.
    fn resolve_firing(&mut self, flags: Option<(bool, bool)>) {
        let bundle = self.current.take();
        match bundle.map(|b| (b.next_pc, b.branch)) {
            Some((NextPc::Branch, Some((kind, offset)))) => {
                let (zero, neg) = flags.unwrap_or((false, false));
                debug_assert!(flags.is_some(), "flags missing at a branch resolve firing");
                if kind.taken(zero, neg) {
                    self.taken_branches += 1;
                    self.pc = self.pc.wrapping_add_signed(offset);
                } else {
                    self.pc = self.pc.wrapping_add(1);
                }
            }
            _ => {
                self.pc = self.pc.wrapping_add(1);
            }
        }
        self.emit_fetch();
    }
}

impl Process<Msg> for ControlUnit {
    fn name(&self) -> &str {
        "CU"
    }

    fn num_inputs(&self) -> usize {
        2
    }

    fn num_outputs(&self) -> usize {
        4
    }

    fn output(&self, port: usize) -> Msg {
        match port {
            OUT_IC => self.out_fetch,
            OUT_RF => self.out_rf,
            OUT_ALU => self.out_alu,
            OUT_DC => self.out_dc,
            other => panic!("control unit has no output port {other}"),
        }
    }

    fn required_inputs(&self) -> PortSet {
        match self.phase {
            Phase::Decode => PortSet::single(IN_IC),
            Phase::Resolve
                if self
                    .current
                    .as_ref()
                    .is_some_and(|b| b.next_pc == NextPc::Branch) =>
            {
                PortSet::single(IN_ALU)
            }
            _ => PortSet::empty(),
        }
    }

    fn fire(&mut self, inputs: &[Option<Msg>]) {
        if self.halted {
            return;
        }
        match self.phase {
            Phase::Fetch => {
                // The fetch request was on the wire during this cycle.
                self.out_fetch = Msg::Bubble;
                self.clear_command_outputs();
                self.phase = Phase::Decode;
            }
            Phase::Decode => {
                let word = match inputs[IN_IC] {
                    Some(Msg::Instr { word }) => Some(word),
                    _ => None,
                };
                self.decode_firing(word);
            }
            Phase::Issue => self.issue_firing(),
            Phase::Exec => {
                self.clear_command_outputs();
                self.phase = Phase::Resolve;
            }
            Phase::Resolve => {
                let flags = match inputs[IN_ALU] {
                    Some(Msg::Flags { zero, neg }) => Some((zero, neg)),
                    _ => None,
                };
                self.resolve_firing(flags);
            }
        }
    }

    fn is_halted(&self) -> bool {
        self.halted
    }

    fn reset(&mut self) {
        *self = Self::new(self.organization);
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::encode;

    fn instr_msg(i: Instr) -> Msg {
        Msg::Instr {
            word: encode(i).unwrap(),
        }
    }

    fn fire_idle(cu: &mut ControlUnit) {
        cu.fire(&[Some(Msg::Bubble), Some(Msg::Bubble)]);
    }

    #[test]
    fn initial_output_is_a_fetch_of_address_zero() {
        let cu = ControlUnit::new(Organization::Multicycle);
        assert_eq!(cu.output(OUT_IC), Msg::Fetch { addr: 0 });
        assert_eq!(cu.output(OUT_RF), Msg::Bubble);
        assert!(!cu.is_halted());
    }

    #[test]
    fn multicycle_alu_instruction_takes_five_firings() {
        let mut cu = ControlUnit::new(Organization::Multicycle);
        // Firing 0: fetch bookkeeping.
        fire_idle(&mut cu);
        assert_eq!(cu.required_inputs(), PortSet::single(IN_IC));
        // Firing 1: decode an add; commands must appear on the outputs.
        cu.fire(&[
            Some(instr_msg(Instr::Alu {
                op: AluOp::Add,
                rd: 1,
                rs1: 2,
                rs2: 3,
            })),
            Some(Msg::Bubble),
        ]);
        assert!(matches!(cu.output(OUT_RF), Msg::RegCmd(_)));
        assert!(matches!(cu.output(OUT_ALU), Msg::AluCmd(_)));
        assert!(matches!(cu.output(OUT_DC), Msg::MemCmd(MemKind::None)));
        // Firings 2-3: issue and exec, no inputs required.
        assert_eq!(cu.required_inputs(), PortSet::empty());
        fire_idle(&mut cu);
        fire_idle(&mut cu);
        // Firing 4: resolve (not a branch: no flags required), next fetch out.
        assert_eq!(cu.required_inputs(), PortSet::empty());
        fire_idle(&mut cu);
        assert_eq!(cu.output(OUT_IC), Msg::Fetch { addr: 1 });
        assert_eq!(cu.instructions(), 1);
    }

    #[test]
    fn pipelined_alu_instruction_takes_three_firings() {
        let mut cu = ControlUnit::new(Organization::Pipelined);
        fire_idle(&mut cu); // fetch
        cu.fire(&[
            Some(instr_msg(Instr::AluImm {
                op: AluOp::Add,
                rd: 1,
                rs1: 1,
                imm: 1,
            })),
            Some(Msg::Bubble),
        ]); // decode
        fire_idle(&mut cu); // issue: next fetch already goes out
        assert_eq!(cu.output(OUT_IC), Msg::Fetch { addr: 1 });
    }

    #[test]
    fn branch_requires_flags_and_updates_pc() {
        for (org, flags, expected_pc) in [
            (Organization::Multicycle, (true, false), 5u32),
            (Organization::Multicycle, (false, false), 1u32),
            (Organization::Pipelined, (true, false), 5u32),
        ] {
            let mut cu = ControlUnit::new(org);
            fire_idle(&mut cu);
            cu.fire(&[
                Some(instr_msg(Instr::Branch {
                    kind: BranchKind::Eq,
                    rs1: 1,
                    rs2: 2,
                    offset: 5,
                })),
                Some(Msg::Bubble),
            ]);
            fire_idle(&mut cu); // issue
            fire_idle(&mut cu); // exec / wait
            assert_eq!(cu.required_inputs(), PortSet::single(IN_ALU));
            cu.fire(&[
                Some(Msg::Bubble),
                Some(Msg::Flags {
                    zero: flags.0,
                    neg: flags.1,
                }),
            ]);
            assert_eq!(
                cu.output(OUT_IC),
                Msg::Fetch { addr: expected_pc },
                "{org:?}"
            );
        }
    }

    #[test]
    fn jump_and_nop_shortcut_to_the_next_fetch() {
        let mut cu = ControlUnit::new(Organization::Multicycle);
        fire_idle(&mut cu);
        cu.fire(&[
            Some(instr_msg(Instr::Jump { target: 9 })),
            Some(Msg::Bubble),
        ]);
        assert_eq!(cu.output(OUT_IC), Msg::Fetch { addr: 9 });

        let mut cu = ControlUnit::new(Organization::Pipelined);
        fire_idle(&mut cu);
        cu.fire(&[Some(instr_msg(Instr::Nop)), Some(Msg::Bubble)]);
        assert_eq!(cu.output(OUT_IC), Msg::Fetch { addr: 1 });
    }

    #[test]
    fn halt_stops_the_control_unit() {
        let mut cu = ControlUnit::new(Organization::Multicycle);
        fire_idle(&mut cu);
        cu.fire(&[Some(instr_msg(Instr::Halt)), Some(Msg::Bubble)]);
        assert!(cu.is_halted());
        assert_eq!(cu.output(OUT_RF), Msg::Bubble);
        // Further firings are inert.
        fire_idle(&mut cu);
        assert!(cu.is_halted());
    }

    #[test]
    fn oracle_requires_ic_only_at_decode() {
        let mut cu = ControlUnit::new(Organization::Multicycle);
        assert_eq!(cu.required_inputs(), PortSet::empty()); // fetch phase
        fire_idle(&mut cu);
        assert_eq!(cu.required_inputs(), PortSet::single(IN_IC)); // decode
    }

    #[test]
    fn reset_restores_the_initial_state() {
        let mut cu = ControlUnit::new(Organization::Pipelined);
        fire_idle(&mut cu);
        cu.fire(&[Some(instr_msg(Instr::Halt)), Some(Msg::Bubble)]);
        assert!(cu.is_halted());
        cu.reset();
        assert!(!cu.is_halted());
        assert_eq!(cu.output(OUT_IC), Msg::Fetch { addr: 0 });
        assert_eq!(cu.organization(), Organization::Pipelined);
    }
}
