//! Runs the extraction-sort workload of the paper on the five-block
//! processor, sweeping a few relay-station configurations and comparing the
//! classical latency-insensitive wrappers (WP1) with the oracle wrappers
//! (WP2).
//!
//! Run with `cargo run --example sort_processor`.

use wp_core::{check_equivalence, SyncPolicy};
use wp_proc::{extraction_sort, run_golden_soc, run_wp_soc, Link, Organization, RsConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const MAX_CYCLES: u64 = 5_000_000;
    let workload = extraction_sort(16, 42)?;
    let organization = Organization::Pipelined;

    let golden = run_golden_soc(&workload, organization, MAX_CYCLES)?;
    println!(
        "golden pipelined run: {} instructions in {} cycles",
        golden.instructions, golden.cycles
    );
    println!(
        "sorted result: {:?}\n",
        &golden.memory[..workload.expected_memory.len()]
    );
    assert!(workload.check(&golden.memory[..workload.expected_memory.len()]));

    let configs = [
        ("All 0 (ideal)", RsConfig::ideal()),
        ("Only RF-DC", RsConfig::single(Link::RfDc, 1)),
        ("Only CU-IC", RsConfig::single(Link::CuIc, 1)),
        ("All 1 (no CU-IC)", RsConfig::uniform(1, &[Link::CuIc])),
    ];

    println!(
        "{:<18} {:>10} {:>10} {:>8} {:>8} {:>12}",
        "configuration", "WP1 cyc", "WP2 cyc", "Th WP1", "Th WP2", "WP2 vs WP1"
    );
    for (label, rs) in configs {
        let wp1 = run_wp_soc(&workload, organization, &rs, SyncPolicy::Strict, MAX_CYCLES)?;
        let wp2 = run_wp_soc(&workload, organization, &rs, SyncPolicy::Oracle, MAX_CYCLES)?;

        // The wire-pipelined runs must produce the same sorted array and the
        // same channel realisations as the golden system.
        assert!(workload.check(&wp1.memory[..workload.expected_memory.len()]));
        assert!(workload.check(&wp2.memory[..workload.expected_memory.len()]));
        assert!(check_equivalence(&golden.traces, &wp2.traces).is_equivalent());

        let th1 = wp1.throughput_vs(golden.cycles);
        let th2 = wp2.throughput_vs(golden.cycles);
        println!(
            "{label:<18} {:>10} {:>10} {th1:>8.3} {th2:>8.3} {:>+11.0}%",
            wp1.cycles,
            wp2.cycles,
            if th1 > 0.0 {
                100.0 * (th2 - th1) / th1
            } else {
                0.0
            }
        );
    }
    Ok(())
}
