//! Offline shim for the `criterion` crate.
//!
//! The build environment of this repository has no access to crates.io, so
//! this in-tree crate provides a std-only micro-benchmark harness with the
//! criterion API surface the workspace benches use: [`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], `bench_function`,
//! `bench_with_input`, `sample_size`, the [`criterion_group!`] /
//! [`criterion_main!`] macros and [`black_box`].
//!
//! Statistics are intentionally simple: after one warm-up iteration, each
//! benchmark runs `sample_size` timed iterations and reports min / median /
//! mean wall-clock times.  That is enough to compare two implementations in
//! the same process (e.g. the arena kernel vs the naive baseline) and to
//! catch large regressions in CI; swap this crate for the real `criterion`
//! in `Cargo.toml` for publication-grade statistics.

#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Prevents the optimiser from deleting a benchmarked computation.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Times closures handed to `Bencher::iter`.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Runs `routine` once for warm-up and then `sample_size` timed times.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        self.samples.reserve(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

/// Summary statistics of one benchmark, also returned to callers that want
/// to post-process timings (e.g. to compute speedup ratios).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Fastest observed iteration.
    pub min: Duration,
    /// Median iteration.
    pub median: Duration,
    /// Mean iteration.
    pub mean: Duration,
}

impl Summary {
    fn from_samples(mut samples: Vec<Duration>) -> Self {
        assert!(!samples.is_empty(), "benchmark ran zero iterations");
        samples.sort_unstable();
        let min = samples[0];
        let median = samples[samples.len() / 2];
        let total: Duration = samples.iter().sum();
        let mean = total / samples.len() as u32;
        Self { min, median, mean }
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "min {:>12.3?}  median {:>12.3?}  mean {:>12.3?}",
            self.min, self.median, self.mean
        )
    }
}

fn run_one(full_name: &str, sample_size: usize, f: impl FnOnce(&mut Bencher)) -> Summary {
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size: sample_size.max(1),
    };
    f(&mut bencher);
    let summary = Summary::from_samples(bencher.samples);
    println!("{full_name:<48} {summary}");
    summary
}

/// A two-part benchmark identifier, mirroring `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Builds an identifier from a function name and a parameter label.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self {
            name: format!("{function}/{parameter}"),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// The benchmark manager, mirroring `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(
        &mut self,
        name: impl fmt::Display,
        f: F,
    ) -> Summary {
        run_one(&name.to_string(), self.sample_size, f)
    }
}

/// A named group of benchmarks sharing a sample size.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs a benchmark inside the group.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        f: F,
    ) -> Summary {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, f)
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnOnce(&mut Bencher, &I)>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        f: F,
    ) -> Summary {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, |b| {
            f(b, input)
        })
    }

    /// Ends the group (a no-op in the shim, kept for API compatibility).
    pub fn finish(self) {}
}

/// Declares a benchmark group function list, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench entry point, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_the_requested_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(5);
        let summary = group.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        group.finish();
        assert!(summary.min <= summary.median && summary.median <= summary.mean * 2);
    }

    #[test]
    fn benchmark_id_formats_both_parts() {
        let id = BenchmarkId::new("wp1", "all1");
        assert_eq!(id.to_string(), "wp1/all1");
    }
}
