//! Programmatic version of the matrix-multiply half of Table 1: sweeps the
//! number of relay stations on one link at a time and reports how far the
//! oracle wrappers (WP2) can push the throughput beyond the m/(m+n) bound
//! that limits the classical wrappers (WP1).
//!
//! Run with `cargo run --example matmul_sweep --release` (a couple of seconds
//! in release mode).

use wp_core::SyncPolicy;
use wp_netlist::predicted_throughput;
use wp_proc::{
    build_soc, matrix_multiply, run_golden_soc, run_wp_soc, Link, Organization, RsConfig,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const MAX_CYCLES: u64 = 20_000_000;
    let workload = matrix_multiply(4, 7)?;
    let organization = Organization::Pipelined;
    let golden = run_golden_soc(&workload, organization, MAX_CYCLES)?;
    println!(
        "golden 4x4 matrix multiply: {} instructions, {} cycles\n",
        golden.instructions, golden.cycles
    );

    println!(
        "{:<10} {:>4} {:>9} {:>8} {:>8} {:>12}",
        "link", "RS", "law WP1", "Th WP1", "Th WP2", "WP2 vs WP1"
    );
    for link in [Link::RfDc, Link::AluRf, Link::AluDc, Link::CuIc] {
        for n_rs in 1..=3usize {
            let rs = RsConfig::single(link, n_rs);
            let law = predicted_throughput(&build_soc(&workload, organization, &rs).to_netlist());
            let wp1 = run_wp_soc(&workload, organization, &rs, SyncPolicy::Strict, MAX_CYCLES)?;
            let wp2 = run_wp_soc(&workload, organization, &rs, SyncPolicy::Oracle, MAX_CYCLES)?;
            assert!(workload.check(&wp1.memory));
            assert!(workload.check(&wp2.memory));
            let th1 = wp1.throughput_vs(golden.cycles);
            let th2 = wp2.throughput_vs(golden.cycles);
            println!(
                "{:<10} {n_rs:>4} {law:>9.3} {th1:>8.3} {th2:>8.3} {:>+11.0}%",
                link.label(),
                100.0 * (th2 - th1) / th1
            );
        }
    }
    Ok(())
}
