//! Enumeration of the simple cycles (netlist loops) of a netlist.
//!
//! "The responsible of performance pitfalls are the netlist loops": every
//! loop containing `m` processes and `n` relay stations limits the system
//! throughput to `m/(m+n)` when shells do not implement oracles.  This module
//! enumerates the simple cycles so that [`crate::throughput`] can apply the
//! law loop by loop.
//!
//! The enumeration is a depth-first search anchored at each node in turn
//! (only visiting nodes with an index not smaller than the anchor), which
//! yields every simple cycle exactly once.  The number of simple cycles can be
//! exponential in pathological graphs, so a hard cap is always supplied.

use crate::graph::{EdgeId, Netlist, NodeId};

/// One simple cycle (netlist loop).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cycle {
    /// The nodes of the loop in traversal order (no repetition; the edge from
    /// the last node back to the first closes the loop).
    pub nodes: Vec<NodeId>,
    /// For each hop `nodes[i] -> nodes[(i+1) % len]`, the edge chosen for the
    /// loop.  When parallel edges exist, the one with the most relay stations
    /// is selected, because that is the binding constraint for the loop
    /// throughput law.
    pub edges: Vec<EdgeId>,
}

impl Cycle {
    /// Number of processes `m` in the loop.
    pub fn process_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of relay stations `n` currently assigned along the loop.
    pub fn relay_station_count(&self, net: &Netlist) -> usize {
        self.edges
            .iter()
            .map(|&e| net.edge(e).relay_stations())
            .sum()
    }

    /// Returns `true` when the loop traverses the given node.
    pub fn contains_node(&self, node: NodeId) -> bool {
        self.nodes.contains(&node)
    }

    /// Returns `true` when the loop traverses the given edge.
    pub fn contains_edge(&self, edge: EdgeId) -> bool {
        self.edges.contains(&edge)
    }

    /// Returns `true` when the loop traverses any edge between `src` and
    /// `dst` (in that direction).
    pub fn contains_hop(&self, net: &Netlist, src: NodeId, dst: NodeId) -> bool {
        self.edges
            .iter()
            .any(|&e| net.edge(e).src() == src && net.edge(e).dst() == dst)
    }

    /// Human-readable form, e.g. `CU -> ALU -> CU`.
    pub fn describe(&self, net: &Netlist) -> String {
        let mut s = String::new();
        for (i, n) in self.nodes.iter().enumerate() {
            if i > 0 {
                s.push_str(" -> ");
            }
            s.push_str(net.node(*n).name());
        }
        if let Some(first) = self.nodes.first() {
            s.push_str(" -> ");
            s.push_str(net.node(*first).name());
        }
        s
    }
}

/// The outcome of a bounded cycle enumeration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CycleEnumeration {
    /// The cycles found, at most `max_cycles` of them.
    pub cycles: Vec<Cycle>,
    /// `true` when the cap stopped the enumeration with at least one
    /// simple cycle still unvisited, i.e. `cycles` is incomplete and a
    /// worse loop than any listed may exist.
    pub truncated: bool,
}

/// Enumerates the simple cycles of `net`, visiting at most `max_cycles`
/// cycles, and reports whether the cap truncated the inventory.
///
/// Self-loops (an edge from a node to itself) are reported as cycles of one
/// node and one edge.
pub fn enumerate_cycles(net: &Netlist, max_cycles: usize) -> CycleEnumeration {
    // Probe one past the cap: finding a (max + 1)-th cycle is the exact
    // witness that the enumeration is incomplete.
    let mut finder = CycleFinder {
        net,
        max_cycles: max_cycles.saturating_add(1),
        cycles: Vec::new(),
        on_path: vec![false; net.node_count()],
        path_nodes: Vec::new(),
        path_edges: Vec::new(),
    };
    for anchor in net.node_ids() {
        if finder.cycles.len() >= finder.max_cycles {
            break;
        }
        finder.search(anchor, anchor);
    }
    let mut cycles = finder.cycles;
    let truncated = cycles.len() > max_cycles;
    cycles.truncate(max_cycles);
    CycleEnumeration { cycles, truncated }
}

/// Enumerates the simple cycles of `net`, visiting at most `max_cycles`
/// cycles (enumeration stops once the cap is reached).
///
/// Use [`enumerate_cycles`] when the caller must know whether the cap
/// truncated the inventory.
pub fn simple_cycles(net: &Netlist, max_cycles: usize) -> Vec<Cycle> {
    enumerate_cycles(net, max_cycles).cycles
}

struct CycleFinder<'a> {
    net: &'a Netlist,
    max_cycles: usize,
    cycles: Vec<Cycle>,
    on_path: Vec<bool>,
    path_nodes: Vec<NodeId>,
    path_edges: Vec<EdgeId>,
}

impl CycleFinder<'_> {
    /// Depth-first search from `current`, only via nodes `>= anchor`.
    fn search(&mut self, anchor: NodeId, current: NodeId) {
        if self.cycles.len() >= self.max_cycles {
            return;
        }
        self.on_path[current.index()] = true;
        self.path_nodes.push(current);

        // Group out-edges by destination so parallel edges collapse onto the
        // worst (most relay stations) representative.
        let mut dests: Vec<(NodeId, EdgeId)> = Vec::new();
        for &edge in self.net.out_edges(current) {
            let dst = self.net.edge(edge).dst();
            if dst < anchor {
                continue;
            }
            match dests.iter_mut().find(|(d, _)| *d == dst) {
                Some((_, best)) => {
                    if self.net.edge(edge).relay_stations() > self.net.edge(*best).relay_stations()
                    {
                        *best = edge;
                    }
                }
                None => dests.push((dst, edge)),
            }
        }

        for (dst, edge) in dests {
            if self.cycles.len() >= self.max_cycles {
                break;
            }
            if dst == anchor {
                let mut edges = self.path_edges.clone();
                edges.push(edge);
                self.cycles.push(Cycle {
                    nodes: self.path_nodes.clone(),
                    edges,
                });
            } else if !self.on_path[dst.index()] {
                self.path_edges.push(edge);
                self.search(anchor, dst);
                self.path_edges.pop();
            }
        }

        self.path_nodes.pop();
        self.on_path[current.index()] = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(cycle: &Cycle, net: &Netlist) -> Vec<String> {
        cycle
            .nodes
            .iter()
            .map(|&n| net.node(n).name().to_string())
            .collect()
    }

    #[test]
    fn two_node_loop() {
        let mut net = Netlist::new();
        let a = net.add_node("A");
        let b = net.add_node("B");
        net.add_edge("ab", a, b);
        net.add_edge("ba", b, a);
        let cycles = simple_cycles(&net, 100);
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].process_count(), 2);
        assert_eq!(cycles[0].describe(&net), "A -> B -> A");
    }

    #[test]
    fn self_loop_is_a_cycle_of_one() {
        let mut net = Netlist::new();
        let a = net.add_node("A");
        net.add_edge("aa", a, a);
        let cycles = simple_cycles(&net, 10);
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].process_count(), 1);
        assert_eq!(cycles[0].edges.len(), 1);
    }

    #[test]
    fn dag_has_no_cycles() {
        let mut net = Netlist::new();
        let a = net.add_node("A");
        let b = net.add_node("B");
        let c = net.add_node("C");
        net.add_edge("ab", a, b);
        net.add_edge("ac", a, c);
        net.add_edge("bc", b, c);
        assert!(simple_cycles(&net, 10).is_empty());
    }

    #[test]
    fn nested_loops_are_all_found() {
        // A -> B -> A, B -> C -> B, A -> B -> C -> A
        let mut net = Netlist::new();
        let a = net.add_node("A");
        let b = net.add_node("B");
        let c = net.add_node("C");
        net.add_edge("ab", a, b);
        net.add_edge("ba", b, a);
        net.add_edge("bc", b, c);
        net.add_edge("cb", c, b);
        net.add_edge("ca", c, a);
        let cycles = simple_cycles(&net, 100);
        let mut found: Vec<Vec<String>> = cycles.iter().map(|c| names(c, &net)).collect();
        found.sort();
        assert_eq!(cycles.len(), 3);
        assert!(found.contains(&vec!["A".to_string(), "B".to_string()]));
        assert!(found.contains(&vec!["B".to_string(), "C".to_string()]));
        assert!(found.contains(&vec!["A".to_string(), "B".to_string(), "C".to_string()]));
    }

    #[test]
    fn parallel_edges_collapse_to_worst() {
        let mut net = Netlist::new();
        let a = net.add_node("A");
        let b = net.add_node("B");
        let w0 = net.add_edge("w0", a, b);
        let w1 = net.add_edge("w1", a, b);
        net.add_edge("ba", b, a);
        net.set_relay_stations(w0, 1);
        net.set_relay_stations(w1, 3);
        let cycles = simple_cycles(&net, 10);
        assert_eq!(cycles.len(), 1);
        assert!(cycles[0].contains_edge(w1));
        assert!(!cycles[0].contains_edge(w0));
        assert_eq!(cycles[0].relay_station_count(&net), 3);
        assert!(cycles[0].contains_hop(&net, a, b));
        assert!(cycles[0].contains_hop(&net, b, a));
    }

    #[test]
    fn cap_limits_enumeration() {
        // Complete digraph on 5 nodes has many cycles; the cap must hold.
        let mut net = Netlist::new();
        let nodes: Vec<_> = (0..5).map(|i| net.add_node(format!("N{i}"))).collect();
        for &x in &nodes {
            for &y in &nodes {
                if x != y {
                    net.add_edge(format!("{x}->{y}"), x, y);
                }
            }
        }
        let cycles = simple_cycles(&net, 7);
        assert_eq!(cycles.len(), 7);
        let all = simple_cycles(&net, 10_000);
        // Number of simple cycles of K5 (directed, all ordered pairs) is 84.
        assert_eq!(all.len(), 84);
    }

    #[test]
    fn enumeration_reports_truncation_exactly() {
        let mut net = Netlist::new();
        let nodes: Vec<_> = (0..4).map(|i| net.add_node(format!("N{i}"))).collect();
        for &x in &nodes {
            for &y in &nodes {
                if x != y {
                    net.add_edge(format!("{x}->{y}"), x, y);
                }
            }
        }
        // K4 (directed) has 20 simple cycles.
        let full = enumerate_cycles(&net, 1_000);
        assert_eq!(full.cycles.len(), 20);
        assert!(!full.truncated);
        let capped = enumerate_cycles(&net, 5);
        assert_eq!(capped.cycles.len(), 5);
        assert!(capped.truncated);
        // A cap equal to the cycle count is not a truncation.
        let exact_cap = enumerate_cycles(&net, 20);
        assert_eq!(exact_cap.cycles.len(), 20);
        assert!(!exact_cap.truncated);
    }
}
