//! The benchmark programs of the paper.
//!
//! Two kernels "cover the spectrum of applications": a strictly
//! data-dependent problem (extraction/selection sort) and a regular one
//! (matrix multiplication).  Each generator returns the assembly source, the
//! assembled program and the initial data memory, plus a checker for the
//! expected result.

use crate::asm::{assemble, AsmError};
use crate::isa::Instr;

/// A ready-to-run benchmark: program, initial memory and expected final
/// memory.
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    /// Human-readable name ("extraction_sort", "matrix_multiply").
    pub name: String,
    /// The assembly source the program was built from.
    pub source: String,
    /// The assembled program.
    pub program: Vec<Instr>,
    /// Initial data-memory contents.
    pub memory: Vec<i64>,
    /// The expected data-memory contents after a correct run.
    pub expected_memory: Vec<i64>,
}

impl Workload {
    /// Returns `true` when `memory` matches the expected final contents.
    pub fn check(&self, memory: &[i64]) -> bool {
        memory == self.expected_memory.as_slice()
    }
}

/// Deterministic pseudo-random values used to fill the sort input (a simple
/// linear congruential generator so the workload does not depend on external
/// crates or global state).
fn lcg_values(n: usize, seed: u64) -> Vec<i64> {
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
    (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) % 1000) as i64
        })
        .collect()
}

/// Builds the extraction-sort (selection sort) workload over `n` elements.
///
/// The array lives at data addresses `0..n` and is sorted in place in
/// ascending order.
///
/// # Errors
///
/// Returns an [`AsmError`] only if the generated source fails to assemble
/// (which would be a bug in the generator).
pub fn extraction_sort(n: usize, seed: u64) -> Result<Workload, AsmError> {
    let values = lcg_values(n, seed);
    let mut expected = values.clone();
    expected.sort_unstable();

    // Register allocation:
    //   r1 = i, r2 = j, r3 = min_idx, r4 = min_val, r5 = tmp, r6 = n
    let source = format!(
        "        addi r6, r0, {n}\n\
         \x20       addi r1, r0, 0\n\
         outer:  addi r5, r6, -1\n\
         \x20       bge  r1, r5, end\n\
         \x20       add  r3, r1, r0\n\
         \x20       lw   r4, r1, 0\n\
         \x20       addi r2, r1, 1\n\
         inner:  bge  r2, r6, swap\n\
         \x20       lw   r5, r2, 0\n\
         \x20       bge  r5, r4, skip\n\
         \x20       add  r4, r5, r0\n\
         \x20       add  r3, r2, r0\n\
         skip:   addi r2, r2, 1\n\
         \x20       jmp  inner\n\
         swap:   lw   r5, r1, 0\n\
         \x20       sw   r4, r1, 0\n\
         \x20       sw   r5, r3, 0\n\
         \x20       addi r1, r1, 1\n\
         \x20       jmp  outer\n\
         end:    halt\n"
    );
    let program = assemble(&source)?;
    Ok(Workload {
        name: "extraction_sort".to_string(),
        source,
        program,
        memory: values,
        expected_memory: expected,
    })
}

/// Builds the `n × n` matrix-multiplication workload `C = A × B`.
///
/// `A` lives at addresses `0..n²`, `B` at `n²..2n²` and `C` at `2n²..3n²`.
///
/// # Errors
///
/// Returns an [`AsmError`] only if the generated source fails to assemble.
pub fn matrix_multiply(n: usize, seed: u64) -> Result<Workload, AsmError> {
    let nn = n * n;
    let a = lcg_values(nn, seed);
    let b = lcg_values(nn, seed.wrapping_add(17));
    let mut memory = Vec::with_capacity(3 * nn);
    memory.extend_from_slice(&a);
    memory.extend_from_slice(&b);
    memory.extend(std::iter::repeat_n(0, nn));

    let mut expected = memory.clone();
    for i in 0..n {
        for j in 0..n {
            let mut sum = 0i64;
            for k in 0..n {
                sum += a[i * n + k] * b[k * n + j];
            }
            expected[2 * nn + i * n + j] = sum;
        }
    }

    // Register allocation:
    //   r1 = i, r2 = j, r3 = k, r4 = sum, r7 = A[i][k], r8 = B[k][j],
    //   r9 = n, r10 = tmp, r11 = n*n, r12 = 2*n*n
    let source = format!(
        "        addi r9, r0, {n}\n\
         \x20       mul  r11, r9, r9\n\
         \x20       add  r12, r11, r11\n\
         \x20       addi r1, r0, 0\n\
         iloop:  bge  r1, r9, end\n\
         \x20       addi r2, r0, 0\n\
         jloop:  bge  r2, r9, inext\n\
         \x20       addi r4, r0, 0\n\
         \x20       addi r3, r0, 0\n\
         kloop:  bge  r3, r9, store\n\
         \x20       mul  r10, r1, r9\n\
         \x20       add  r10, r10, r3\n\
         \x20       lw   r7, r10, 0\n\
         \x20       mul  r10, r3, r9\n\
         \x20       add  r10, r10, r2\n\
         \x20       add  r10, r10, r11\n\
         \x20       lw   r8, r10, 0\n\
         \x20       mul  r10, r7, r8\n\
         \x20       add  r4, r4, r10\n\
         \x20       addi r3, r3, 1\n\
         \x20       jmp  kloop\n\
         store:  mul  r10, r1, r9\n\
         \x20       add  r10, r10, r2\n\
         \x20       add  r10, r10, r12\n\
         \x20       sw   r4, r10, 0\n\
         \x20       addi r2, r2, 1\n\
         \x20       jmp  jloop\n\
         inext:  addi r1, r1, 1\n\
         \x20       jmp  iloop\n\
         end:    halt\n"
    );
    let program = assemble(&source)?;
    Ok(Workload {
        name: "matrix_multiply".to_string(),
        source,
        program,
        memory,
        expected_memory: expected,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iss::Iss;

    #[test]
    fn sort_workload_is_correct_on_the_iss() {
        for n in [1usize, 2, 5, 16] {
            let wl = extraction_sort(n, 42).unwrap();
            let result = Iss::new(wl.program.clone(), wl.memory.clone())
                .run(5_000_000)
                .unwrap();
            assert!(wl.check(&result.memory), "sort of {n} elements");
        }
    }

    #[test]
    fn matmul_workload_is_correct_on_the_iss() {
        for n in [1usize, 2, 3, 5] {
            let wl = matrix_multiply(n, 7).unwrap();
            let result = Iss::new(wl.program.clone(), wl.memory.clone())
                .run(5_000_000)
                .unwrap();
            assert!(wl.check(&result.memory), "matmul {n}x{n}");
        }
    }

    #[test]
    fn sort_input_is_not_already_sorted() {
        let wl = extraction_sort(16, 1).unwrap();
        assert_ne!(wl.memory, wl.expected_memory);
        assert_eq!(wl.memory.len(), 16);
    }

    #[test]
    fn matmul_layout_is_three_matrices() {
        let n = 3;
        let wl = matrix_multiply(n, 1).unwrap();
        assert_eq!(wl.memory.len(), 3 * n * n);
        // The C region starts zeroed and is filled by the program.
        assert!(wl.memory[2 * n * n..].iter().all(|&v| v == 0));
        assert!(wl.expected_memory[2 * n * n..].iter().any(|&v| v != 0));
    }

    #[test]
    fn workloads_are_deterministic_for_a_seed() {
        assert_eq!(
            extraction_sort(8, 3).unwrap(),
            extraction_sort(8, 3).unwrap()
        );
        assert_ne!(
            extraction_sort(8, 3).unwrap().memory,
            extraction_sort(8, 4).unwrap().memory
        );
    }
}
