//! The shard planner: contiguous submission-order ranges.

use std::ops::Range;

/// A partition of `n_items` submission-order indices into contiguous
/// ranges, one per shard.
///
/// [`ShardPlan::split`] uses the same proportional formula that seeds the
/// in-process work-stealing deques of `wp_sim::SweepRunner`
/// (`s·n/k .. (s+1)·n/k`), so shard sizes differ by at most one and the
/// concatenation of all ranges is exactly `0..n_items` in order.
/// [`ShardPlan::split_weighted`] generalises the formula to per-shard
/// weights (host capacities in a cross-machine dispatch): boundaries fall
/// at `prefix_weight·n/total_weight`, which degenerates to the uniform
/// split when all weights are equal.  With more shards than items some
/// ranges are empty — callers simply skip spawning workers for those — and
/// an empty plan (`n_items == 0`) has only empty ranges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    items: usize,
    /// Range boundaries: `bounds.len() == shards + 1`, `bounds[0] == 0`,
    /// `bounds[shards] == items`, monotonically non-decreasing.
    bounds: Vec<usize>,
}

impl ShardPlan {
    /// Splits `n_items` submission-order indices into `n_shards` contiguous
    /// ranges of near-equal size.  A shard count of `0` is treated as `1`
    /// (everything in one shard) so a plan always covers all items.
    pub fn split(n_items: usize, n_shards: usize) -> Self {
        let shards = n_shards.max(1);
        Self {
            items: n_items,
            bounds: (0..=shards).map(|s| s * n_items / shards).collect(),
        }
    }

    /// Splits `n_items` submission-order indices into `weights.len()`
    /// contiguous ranges whose sizes are proportional to the weights
    /// (rounded so the concatenation is still exactly `0..n_items`).  Used
    /// by the cross-machine dispatcher to hand each host a share of the
    /// sweep matching its declared capacity; a zero-weight shard gets an
    /// empty range.  An empty or all-zero weight list degenerates to the
    /// uniform [`ShardPlan::split`] so a plan always covers all items.
    pub fn split_weighted(n_items: usize, weights: &[usize]) -> Self {
        let total: u128 = weights.iter().map(|&w| w as u128).sum();
        if total == 0 {
            return Self::split(n_items, weights.len());
        }
        let mut bounds = Vec::with_capacity(weights.len() + 1);
        bounds.push(0);
        let mut prefix: u128 = 0;
        for &w in weights {
            prefix += w as u128;
            bounds.push((prefix * n_items as u128 / total) as usize);
        }
        Self {
            items: n_items,
            bounds,
        }
    }

    /// The total number of items the plan covers.
    pub fn items(&self) -> usize {
        self.items
    }

    /// The number of shards (at least 1).
    pub fn shards(&self) -> usize {
        self.bounds.len() - 1
    }

    /// The submission-order range assigned to `shard`.
    ///
    /// # Panics
    ///
    /// Panics if `shard >= self.shards()`.
    pub fn range(&self, shard: usize) -> Range<usize> {
        assert!(
            shard < self.shards(),
            "shard {shard} out of range (plan has {} shards)",
            self.shards()
        );
        self.bounds[shard]..self.bounds[shard + 1]
    }

    /// All shard ranges in shard order (their concatenation is
    /// `0..self.items()`).
    pub fn ranges(&self) -> impl Iterator<Item = Range<usize>> + '_ {
        (0..self.shards()).map(|s| self.range(s))
    }

    /// The shards whose range is non-empty (the ones worth spawning a
    /// worker for).
    pub fn populated_shards(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.shards()).filter(|&s| !self.range(s).is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The ranges are contiguous, ordered and cover every index exactly
    /// once, for every (items, shards) pair in a broad grid.
    #[test]
    fn ranges_partition_the_submission_order() {
        for items in 0..40usize {
            for shards in 1..=2 * items.max(1) {
                let plan = ShardPlan::split(items, shards);
                let mut next = 0usize;
                for range in plan.ranges() {
                    assert_eq!(range.start, next, "items {items}, shards {shards}");
                    assert!(range.end >= range.start);
                    next = range.end;
                }
                assert_eq!(next, items, "items {items}, shards {shards}");
            }
        }
    }

    /// Shard sizes are balanced: they differ by at most one.
    #[test]
    fn shard_sizes_differ_by_at_most_one() {
        for items in 0..40usize {
            for shards in 1..20usize {
                let plan = ShardPlan::split(items, shards);
                let sizes: Vec<usize> = plan.ranges().map(|r| r.len()).collect();
                let min = sizes.iter().min().unwrap();
                let max = sizes.iter().max().unwrap();
                assert!(max - min <= 1, "items {items}, shards {shards}: {sizes:?}");
            }
        }
    }

    #[test]
    fn more_shards_than_items_leaves_trailing_work_covered() {
        let plan = ShardPlan::split(3, 7);
        assert_eq!(plan.populated_shards().count(), 3);
        let covered: Vec<usize> = plan.ranges().flatten().collect();
        assert_eq!(covered, vec![0, 1, 2]);
    }

    #[test]
    fn empty_plan_has_only_empty_ranges() {
        let plan = ShardPlan::split(0, 4);
        assert_eq!(plan.items(), 0);
        assert!(plan.ranges().all(|r| r.is_empty()));
        assert_eq!(plan.populated_shards().count(), 0);
    }

    #[test]
    fn zero_shards_is_promoted_to_one() {
        let plan = ShardPlan::split(5, 0);
        assert_eq!(plan.shards(), 1);
        assert_eq!(plan.range(0), 0..5);
    }

    #[test]
    fn split_matches_the_sweep_runner_deque_seeding() {
        // The in-process scheduler seeds worker w with w·n/k .. (w+1)·n/k;
        // the process-level plan must agree so both layers chunk the
        // submission order identically.
        let (n, k) = (23, 5);
        let plan = ShardPlan::split(n, k);
        for w in 0..k {
            assert_eq!(plan.range(w), w * n / k..(w + 1) * n / k);
        }
    }

    /// Equal weights reduce the weighted split to the uniform one, for
    /// every (items, shards, weight) combination in a broad grid.
    #[test]
    fn equal_weights_match_the_uniform_split() {
        for items in 0..30usize {
            for shards in 1..8usize {
                for weight in 1..4usize {
                    let weights = vec![weight; shards];
                    assert_eq!(
                        ShardPlan::split_weighted(items, &weights),
                        ShardPlan::split(items, shards),
                        "items {items}, shards {shards}, weight {weight}"
                    );
                }
            }
        }
    }

    /// Weighted ranges are still contiguous, ordered and covering, and
    /// their sizes track the weights proportionally (within rounding).
    #[test]
    fn weighted_ranges_partition_and_track_the_weights() {
        for (items, weights) in [
            (8, vec![1usize, 3]),
            (20, vec![2, 1, 1]),
            (7, vec![5, 0, 2]),
            (100, vec![1, 1, 1, 97]),
            (3, vec![10, 10]),
        ] {
            let plan = ShardPlan::split_weighted(items, &weights);
            assert_eq!(plan.shards(), weights.len());
            let mut next = 0usize;
            for (s, range) in plan.ranges().enumerate() {
                assert_eq!(range.start, next, "{weights:?} shard {s}");
                next = range.end;
            }
            assert_eq!(next, items, "{weights:?}");
            let total: usize = weights.iter().sum();
            for (s, range) in plan.ranges().enumerate() {
                let ideal = weights[s] as f64 * items as f64 / total as f64;
                assert!(
                    (range.len() as f64 - ideal).abs() < 2.0,
                    "{weights:?} shard {s}: {} items vs ideal {ideal}",
                    range.len()
                );
            }
        }
    }

    #[test]
    fn weighted_split_gives_zero_weight_shards_empty_ranges() {
        let plan = ShardPlan::split_weighted(10, &[1, 0, 1]);
        assert!(plan.range(1).is_empty());
        assert_eq!(plan.populated_shards().collect::<Vec<_>>(), vec![0, 2]);
    }

    #[test]
    fn degenerate_weight_lists_fall_back_to_the_uniform_split() {
        assert_eq!(ShardPlan::split_weighted(5, &[]), ShardPlan::split(5, 0));
        assert_eq!(
            ShardPlan::split_weighted(5, &[0, 0]),
            ShardPlan::split(5, 2)
        );
    }

    #[test]
    fn weighted_bounds_do_not_overflow_on_large_weights() {
        let plan = ShardPlan::split_weighted(1_000, &[usize::MAX / 2, usize::MAX / 2]);
        assert_eq!(plan.range(0), 0..500);
        assert_eq!(plan.range(1), 500..1_000);
    }
}
