//! A small two-pass assembler for the minimal ISA.
//!
//! The benchmark programs of the paper (extraction sort and matrix multiply)
//! are written in assembly text (see [`crate::programs`]); this module turns
//! that text into instruction words for the instruction memory.
//!
//! Syntax:
//!
//! ```text
//! ; comment
//! label:  addi r1, r0, 5       ; immediate ALU operation
//!         add  r2, r1, r1
//!         lw   r3, r1, 0       ; r3 = mem[r1 + 0]
//!         sw   r3, r1, 4       ; mem[r1 + 4] = r3
//!         beq  r2, r3, label   ; branch to a label (or a numeric offset)
//!         jmp  label
//!         halt
//! ```

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use crate::isa::{AluOp, BranchKind, Instr, Reg};

/// An error produced while assembling a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based source line of the error.
    pub line: usize,
    /// Explanation of the problem.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for AsmError {}

/// Assembles a program text into a list of instructions.
///
/// # Errors
///
/// Returns an [`AsmError`] pointing at the offending source line for syntax
/// errors, unknown mnemonics, bad register names or undefined labels.
///
/// # Examples
///
/// ```
/// use wp_proc::assemble;
///
/// let program = assemble(
///     "start: addi r1, r0, 3\n\
///      loop:  addi r1, r1, -1\n\
///             bne  r1, r0, loop\n\
///             halt\n",
/// )?;
/// assert_eq!(program.len(), 4);
/// # Ok::<(), wp_proc::AsmError>(())
/// ```
pub fn assemble(source: &str) -> Result<Vec<Instr>, AsmError> {
    // Pass 1: collect labels and the raw statements.
    let mut labels: HashMap<String, u32> = HashMap::new();
    let mut statements: Vec<(usize, String)> = Vec::new();
    for (line_no, raw_line) in source.lines().enumerate() {
        let line_no = line_no + 1;
        let mut text = raw_line;
        if let Some(pos) = text.find(';') {
            text = &text[..pos];
        }
        let mut text = text.trim();
        if text.is_empty() {
            continue;
        }
        while let Some(colon) = text.find(':') {
            let label = text[..colon].trim();
            if label.is_empty() || !label.chars().all(|c| c.is_alphanumeric() || c == '_') {
                return Err(AsmError {
                    line: line_no,
                    message: format!("invalid label '{label}'"),
                });
            }
            if labels
                .insert(label.to_string(), statements.len() as u32)
                .is_some()
            {
                return Err(AsmError {
                    line: line_no,
                    message: format!("duplicate label '{label}'"),
                });
            }
            text = text[colon + 1..].trim();
        }
        if !text.is_empty() {
            statements.push((line_no, text.to_string()));
        }
    }

    // Pass 2: translate statements.
    let mut program = Vec::with_capacity(statements.len());
    for (index, (line, text)) in statements.iter().enumerate() {
        let instr = parse_statement(text, *line, index as u32, &labels)?;
        program.push(instr);
    }
    Ok(program)
}

fn parse_statement(
    text: &str,
    line: usize,
    address: u32,
    labels: &HashMap<String, u32>,
) -> Result<Instr, AsmError> {
    let err = |message: String| AsmError { line, message };
    let (mnemonic, rest) = match text.split_once(char::is_whitespace) {
        Some((m, r)) => (m, r.trim()),
        None => (text, ""),
    };
    let mnemonic = mnemonic.to_ascii_lowercase();
    let operands: Vec<&str> = if rest.is_empty() {
        Vec::new()
    } else {
        rest.split(',').map(str::trim).collect()
    };

    let reg = |s: &str| -> Result<Reg, AsmError> {
        let s = s.trim();
        let digits = s
            .strip_prefix('r')
            .or_else(|| s.strip_prefix('R'))
            .ok_or_else(|| err(format!("expected a register, found '{s}'")))?;
        let value: u8 = digits
            .parse()
            .map_err(|_| err(format!("bad register '{s}'")))?;
        if usize::from(value) >= crate::isa::NUM_REGS {
            return Err(err(format!("register '{s}' out of range")));
        }
        Ok(value)
    };
    let imm = |s: &str| -> Result<i32, AsmError> {
        s.trim()
            .parse::<i32>()
            .map_err(|_| err(format!("bad immediate '{s}'")))
    };
    let need = |n: usize| -> Result<(), AsmError> {
        if operands.len() == n {
            Ok(())
        } else {
            Err(err(format!(
                "'{mnemonic}' expects {n} operands, found {}",
                operands.len()
            )))
        }
    };
    // A branch target may be a label (absolute) or a numeric relative offset.
    let branch_offset = |s: &str| -> Result<i32, AsmError> {
        let s = s.trim();
        if let Some(&target) = labels.get(s) {
            Ok(target as i32 - address as i32)
        } else {
            imm(s)
        }
    };
    let jump_target = |s: &str| -> Result<u32, AsmError> {
        let s = s.trim();
        if let Some(&target) = labels.get(s) {
            Ok(target)
        } else {
            s.parse::<u32>()
                .map_err(|_| err(format!("unknown label or address '{s}'")))
        }
    };

    let alu_of = |name: &str| -> Option<AluOp> {
        Some(match name {
            "add" => AluOp::Add,
            "sub" => AluOp::Sub,
            "and" => AluOp::And,
            "or" => AluOp::Or,
            "xor" => AluOp::Xor,
            "slt" => AluOp::Slt,
            "mul" => AluOp::Mul,
            "shl" => AluOp::Shl,
            "shr" => AluOp::Shr,
            _ => return None,
        })
    };
    let branch_of = |name: &str| -> Option<BranchKind> {
        Some(match name {
            "beq" => BranchKind::Eq,
            "bne" => BranchKind::Ne,
            "blt" => BranchKind::Lt,
            "bge" => BranchKind::Ge,
            _ => return None,
        })
    };

    if let Some(op) = alu_of(&mnemonic) {
        need(3)?;
        return Ok(Instr::Alu {
            op,
            rd: reg(operands[0])?,
            rs1: reg(operands[1])?,
            rs2: reg(operands[2])?,
        });
    }
    if let Some(base) = mnemonic.strip_suffix('i').and_then(alu_of) {
        need(3)?;
        return Ok(Instr::AluImm {
            op: base,
            rd: reg(operands[0])?,
            rs1: reg(operands[1])?,
            imm: imm(operands[2])?,
        });
    }
    if let Some(kind) = branch_of(&mnemonic) {
        need(3)?;
        return Ok(Instr::Branch {
            kind,
            rs1: reg(operands[0])?,
            rs2: reg(operands[1])?,
            offset: branch_offset(operands[2])?,
        });
    }
    match mnemonic.as_str() {
        "lw" => {
            need(3)?;
            Ok(Instr::Load {
                rd: reg(operands[0])?,
                rs1: reg(operands[1])?,
                imm: imm(operands[2])?,
            })
        }
        "sw" => {
            need(3)?;
            Ok(Instr::Store {
                rs2: reg(operands[0])?,
                rs1: reg(operands[1])?,
                imm: imm(operands[2])?,
            })
        }
        "jmp" | "j" => {
            need(1)?;
            Ok(Instr::Jump {
                target: jump_target(operands[0])?,
            })
        }
        "nop" => {
            need(0)?;
            Ok(Instr::Nop)
        }
        "halt" => {
            need(0)?;
            Ok(Instr::Halt)
        }
        other => Err(err(format!("unknown mnemonic '{other}'"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assembles_all_instruction_forms() {
        let src = "\
            ; a comment-only line\n\
            start: addi r1, r0, 5\n\
            add r2, r1, r1\n\
            mul r3, r2, r1\n\
            lw r4, r1, 2\n\
            sw r4, r1, 3\n\
            loop: subi r1, r1, 1\n\
            bne r1, r0, loop\n\
            blt r1, r2, start\n\
            jmp end\n\
            nop\n\
            end: halt\n";
        let prog = assemble(src).unwrap();
        assert_eq!(prog.len(), 11);
        assert_eq!(
            prog[0],
            Instr::AluImm {
                op: AluOp::Add,
                rd: 1,
                rs1: 0,
                imm: 5
            }
        );
        assert_eq!(
            prog[6],
            Instr::Branch {
                kind: BranchKind::Ne,
                rs1: 1,
                rs2: 0,
                offset: -1
            }
        );
        assert_eq!(
            prog[7],
            Instr::Branch {
                kind: BranchKind::Lt,
                rs1: 1,
                rs2: 2,
                offset: -7
            }
        );
        assert_eq!(prog[8], Instr::Jump { target: 10 });
        assert_eq!(prog[10], Instr::Halt);
    }

    #[test]
    fn labels_on_their_own_line() {
        let src = "top:\n  addi r1, r0, 1\n  jmp top\n";
        let prog = assemble(src).unwrap();
        assert_eq!(prog.len(), 2);
        assert_eq!(prog[1], Instr::Jump { target: 0 });
    }

    #[test]
    fn numeric_branch_offsets_and_targets() {
        let src = "beq r0, r0, 2\n nop\n jmp 0\n halt\n";
        let prog = assemble(src).unwrap();
        assert_eq!(
            prog[0],
            Instr::Branch {
                kind: BranchKind::Eq,
                rs1: 0,
                rs2: 0,
                offset: 2
            }
        );
        assert_eq!(prog[2], Instr::Jump { target: 0 });
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = assemble("nop\nfoo r1, r2\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("unknown mnemonic"));

        let err = assemble("add r1, r2\n").unwrap_err();
        assert!(err.message.contains("expects 3 operands"));

        let err = assemble("add r1, r2, r99\n").unwrap_err();
        assert!(err.message.contains("out of range"));

        let err = assemble("jmp nowhere\n").unwrap_err();
        assert!(err.message.contains("unknown label"));

        let err = assemble("lw r1, r2, abc\n").unwrap_err();
        assert!(err.message.contains("bad immediate"));
    }

    #[test]
    fn duplicate_labels_are_rejected() {
        let err = assemble("a: nop\na: halt\n").unwrap_err();
        assert!(err.message.contains("duplicate label"));
    }

    #[test]
    fn case_insensitive_mnemonics_and_registers() {
        let prog = assemble("ADD R1, R2, R3\nHALT\n").unwrap();
        assert_eq!(
            prog[0],
            Instr::Alu {
                op: AluOp::Add,
                rd: 1,
                rs1: 2,
                rs2: 3
            }
        );
    }
}
